#include "api/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "sim/metrics.hpp"

namespace coopsim::api
{

namespace
{

/** First value of an axis, or fatal when the axis is empty and a cell
 *  did not override it. */
template <typename T>
const T &
firstOf(const std::vector<T> &axis, const char *what)
{
    if (axis.empty()) {
        COOPSIM_FATAL("cell does not specify a ", what,
                      " and the spec's ", what, " axis is empty");
    }
    return axis.front();
}

} // namespace

Registry<MetricFn> &
metricRegistry()
{
    static Registry<MetricFn> registry = [] {
        Registry<MetricFn> r("metric");
        r.add("speedup",
              [](const ExperimentResults &results, const Cell &cell) {
                  return results.weightedSpeedup(cell);
              });
        r.add("dynamic_energy",
              [](const ExperimentResults &results, const Cell &cell) {
                  return results.result(cell).dynamic_energy_nj;
              });
        r.add("static_energy",
              [](const ExperimentResults &results, const Cell &cell) {
                  return results.result(cell).static_energy_nj;
              });
        return r;
    }();
    return registry;
}

void
registerMetric(const std::string &name, MetricFn fn)
{
    metricRegistry().add(name, std::move(fn));
}

ExperimentResults::ExperimentResults(ExperimentSpec spec)
    : spec_(std::move(spec))
{
    validateSpec(spec_);
    if (spec_.layout != "none") {
        metricRegistry().get(spec_.metric);
    }
    groups_ = resolveSpecGroups(spec_);
    keys_ = expandSpec(spec_);
    sim::RunExecutor::instance().prefetch(keys_);
}

sim::RunKey
ExperimentResults::keyFor(const Cell &cell) const
{
    sim::RunKey key;
    key.kind = sim::RunKey::Kind::Group;
    key.scheme = !cell.scheme.empty()
                     ? cell.scheme
                     : firstOf(spec_.schemes, "scheme");
    key.name = cell.group;
    key.num_cores = static_cast<std::uint32_t>(
        workloadRegistry().get(cell.group).apps.size());
    key.scale = scaleRegistry().get(spec_.scale);
    key.threshold = cell.threshold.value_or(
        firstOf(spec_.thresholds, "threshold"));
    key.threshold_mode = thresholdModeRegistry().get(
        !cell.threshold_mode.empty()
            ? cell.threshold_mode
            : firstOf(spec_.threshold_modes, "threshold mode"));
    key.partitioner = partitionerRegistry().get(
        !cell.partitioner.empty()
            ? cell.partitioner
            : firstOf(spec_.partitioners, "partitioner"));
    key.repl = replPolicyRegistry().get(
        !cell.repl.empty() ? cell.repl
                           : firstOf(spec_.repl, "replacement policy"));
    key.gating = gatingModeRegistry().get(
        !cell.gating.empty() ? cell.gating
                             : firstOf(spec_.gating, "gating mode"));
    key.seed = cell.seed.value_or(firstOf(spec_.seeds, "seed"));
    key.banks = cell.banks.value_or(firstOf(spec_.banks, "banks"));
    key.slice_hash = sliceHashRegistry().get(
        !cell.slice_hash.empty()
            ? cell.slice_hash
            : firstOf(spec_.slice_hashes, "slice hash"));
    return key;
}

const sim::RunResult &
ExperimentResults::result(const Cell &cell) const
{
    return result(keyFor(cell));
}

const sim::RunResult &
ExperimentResults::result(const sim::RunKey &key) const
{
    return sim::RunExecutor::instance().run(key);
}

const sim::RunResult &
ExperimentResults::soloResult(const std::string &app,
                              std::uint32_t cores,
                              const Cell &cell) const
{
    sim::RunKey key;
    key.kind = sim::RunKey::Kind::Solo;
    key.scheme = "unmanaged";
    key.name = app;
    key.num_cores = cores;
    key.scale = scaleRegistry().get(spec_.scale);
    key.threshold = 0.0;
    key.threshold_mode = partition::ThresholdMode::MissRatio;
    key.partitioner = partition::Partitioner::Lookahead;
    key.repl = replPolicyRegistry().get(
        !cell.repl.empty() ? cell.repl
                           : firstOf(spec_.repl, "replacement policy"));
    key.gating = llc::GatingMode::GatedVdd;
    key.seed = cell.seed.value_or(firstOf(spec_.seeds, "seed"));
    return result(key);
}

double
ExperimentResults::soloIpc(const std::string &app, std::uint32_t cores,
                           const Cell &cell) const
{
    return soloResult(app, cores, cell).apps.at(0).ipc;
}

double
ExperimentResults::weightedSpeedup(const Cell &cell) const
{
    const trace::WorkloadGroup &group =
        workloadRegistry().get(cell.group);
    const auto cores = static_cast<std::uint32_t>(group.apps.size());
    const sim::RunResult &shared = result(cell);
    std::vector<double> alone;
    alone.reserve(group.apps.size());
    for (const std::string &app : group.apps) {
        alone.push_back(soloIpc(app, cores, cell));
    }
    return sim::weightedSpeedup(shared, alone);
}

double
ExperimentResults::metric(const std::string &name,
                          const Cell &cell) const
{
    return metricRegistry().get(name)(*this, cell);
}

ExperimentResults
runExperiment(const ExperimentSpec &spec)
{
    return ExperimentResults(spec);
}

// ---------------------------------------------------------------------------
// Table rendering

namespace
{

/**
 * Shared body of the normalised column layouts (schemes, thresholds,
 * partitioners): one row per group with every cell normalised to that
 * row's baseline cell, closed by a geometric-mean AVG row. The layout
 * printers keep only their header lines and the Cell field their
 * column axis sets.
 */
void
printNormalisedRows(
    const ExperimentResults &results, const MetricFn &metric,
    int group_width, std::size_t columns,
    const std::function<Cell(const std::string &)> &baseline_cell,
    const std::function<Cell(const std::string &, std::size_t)> &cell_at)
{
    std::vector<std::vector<double>> norms(columns);
    for (const trace::WorkloadGroup &group : results.groups()) {
        const double baseline =
            metric(results, baseline_cell(group.name));
        std::printf("%-*s", group_width, group.name.c_str());
        for (std::size_t i = 0; i < columns; ++i) {
            const double norm = sim::normalizeTo(
                metric(results, cell_at(group.name, i)), baseline);
            norms[i].push_back(norm);
            std::printf(" %12.3f", norm);
        }
        std::printf("\n");
    }
    std::printf("%-*s", group_width, "AVG");
    for (std::size_t i = 0; i < columns; ++i) {
        std::printf(" %12.3f", stats::geomean(norms[i]));
    }
    std::printf("\n");
}

void
printSchemeTable(const ExperimentResults &results,
                 const MetricFn &metric)
{
    const ExperimentSpec &spec = results.spec();
    std::printf("%s\n", spec.title.c_str());
    std::printf("# normalised to %s; %s is better\n",
                schemeLabel(spec.baseline).c_str(),
                spec.higher_better ? "higher" : "lower");
    std::printf("%-8s", "group");
    for (const std::string &scheme : spec.schemes) {
        std::printf(" %12s", schemeLabel(scheme).c_str());
    }
    std::printf("\n");

    printNormalisedRows(
        results, metric, 8, spec.schemes.size(),
        [&spec](const std::string &group) {
            Cell cell;
            cell.group = group;
            cell.scheme = spec.baseline;
            return cell;
        },
        [&spec](const std::string &group, std::size_t i) {
            Cell cell;
            cell.group = group;
            cell.scheme = spec.schemes[i];
            return cell;
        });
}

void
printThresholdTable(const ExperimentResults &results,
                    const MetricFn &metric)
{
    const ExperimentSpec &spec = results.spec();
    const double baseline_t = std::strtod(spec.baseline.c_str(), nullptr);

    std::printf("%s\n", spec.title.c_str());
    std::printf("# %s, normalised to T = %s\n",
                schemeLabel(spec.schemes.empty() ? "coop"
                                                 : spec.schemes.front())
                    .c_str(),
                spec.baseline.c_str());
    std::printf("%-8s", "group");
    for (const double t : spec.thresholds) {
        std::printf("       T=%4.2f", t);
    }
    std::printf("\n");

    printNormalisedRows(
        results, metric, 8, spec.thresholds.size(),
        [baseline_t](const std::string &group) {
            Cell cell;
            cell.group = group;
            cell.threshold = baseline_t;
            return cell;
        },
        [&spec](const std::string &group, std::size_t i) {
            Cell cell;
            cell.group = group;
            cell.threshold = spec.thresholds[i];
            return cell;
        });
}

void
printPartitionerTable(const ExperimentResults &results,
                      const MetricFn &metric)
{
    const ExperimentSpec &spec = results.spec();
    std::printf("%s\n", spec.title.c_str());
    std::printf("# normalised to %s; %s is better\n",
                spec.baseline.c_str(),
                spec.higher_better ? "higher" : "lower");
    std::printf("%-10s", "group");
    for (const std::string &partitioner : spec.partitioners) {
        std::printf(" %12s", partitioner.c_str());
    }
    std::printf("\n");

    printNormalisedRows(
        results, metric, 10, spec.partitioners.size(),
        [&spec](const std::string &group) {
            Cell cell;
            cell.group = group;
            cell.partitioner = spec.baseline;
            return cell;
        },
        [&spec](const std::string &group, std::size_t i) {
            Cell cell;
            cell.group = group;
            cell.partitioner = spec.partitioners[i];
            return cell;
        });
}

/** The Figure 14 breakdown: events that set takeover bits while ways
 *  migrate (donor/recipient x hit/miss), for the first scheme. */
void
printTakeoverTable(const ExperimentResults &results)
{
    const ExperimentSpec &spec = results.spec();
    std::printf("%s\n", spec.title.c_str());
    std::printf("%-8s %10s %10s %10s %10s %10s\n", "group", "recipMiss",
                "recipHit", "donorMiss", "donorHit", "events");

    std::uint64_t tdh = 0;
    std::uint64_t tdm = 0;
    std::uint64_t trh = 0;
    std::uint64_t trm = 0;
    for (const auto &group : results.groups()) {
        Cell cell;
        cell.group = group.name;
        const auto &r = results.result(cell);
        const std::uint64_t total = r.donor_hits + r.donor_misses +
                                    r.recipient_hits +
                                    r.recipient_misses;
        tdh += r.donor_hits;
        tdm += r.donor_misses;
        trh += r.recipient_hits;
        trm += r.recipient_misses;
        if (total == 0) {
            std::printf("%-8s %10s %10s %10s %10s %10s\n",
                        group.name.c_str(), "-", "-", "-", "-", "0");
            continue;
        }
        const double d = static_cast<double>(total);
        std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10llu\n",
                    group.name.c_str(), r.recipient_misses / d,
                    r.recipient_hits / d, r.donor_misses / d,
                    r.donor_hits / d,
                    static_cast<unsigned long long>(total));
    }
    const std::uint64_t total = tdh + tdm + trh + trm;
    if (total > 0) {
        const double d = static_cast<double>(total);
        std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10llu\n", "AVG",
                    trm / d, trh / d, tdm / d, tdh / d,
                    static_cast<unsigned long long>(total));
        std::printf("# donor hits + recipient misses = %.3f "
                    "(paper: ~two-thirds)\n",
                    (tdh + trm) / d);
    }
}

/** The Figure 15 comparison: average cycles to transfer one complete
 *  way, first scheme of the axis vs second. */
void
printTransferTable(const ExperimentResults &results)
{
    const ExperimentSpec &spec = results.spec();
    const std::string &left = spec.schemes.at(0);
    const std::string &right = spec.schemes.at(1);
    std::printf("%s\n", spec.title.c_str());
    std::printf("%-8s %14s %14s %8s %8s\n", "group",
                schemeLabel(left).c_str(), schemeLabel(right).c_str(),
                ("#" + left).c_str(), ("#" + right).c_str());

    std::vector<double> left_all;
    std::vector<double> right_all;
    for (const auto &group : results.groups()) {
        Cell left_cell;
        left_cell.group = group.name;
        left_cell.scheme = left;
        Cell right_cell;
        right_cell.group = group.name;
        right_cell.scheme = right;
        const auto &u = results.result(left_cell);
        const auto &c = results.result(right_cell);
        if (u.completed_transfers > 0) {
            left_all.push_back(u.avg_transfer_cycles);
        }
        if (c.completed_transfers > 0) {
            right_all.push_back(c.avg_transfer_cycles);
        }
        auto fmt = [](const sim::RunResult &r) {
            return r.completed_transfers > 0 ? r.avg_transfer_cycles
                                             : 0.0;
        };
        std::printf("%-8s %14.0f %14.0f %8llu %8llu\n",
                    group.name.c_str(), fmt(u), fmt(c),
                    static_cast<unsigned long long>(
                        u.completed_transfers),
                    static_cast<unsigned long long>(
                        c.completed_transfers));
    }
    const double left_avg = stats::mean(left_all);
    const double right_avg = stats::mean(right_all);
    std::printf("%-8s %14.0f %14.0f\n", "AVG", left_avg, right_avg);
    if (right_avg > 0.0) {
        // The paper's reference number applies to its own comparison
        // (UCP vs Cooperative) only.
        const bool paper_pair = left == "ucp" && right == "coop";
        std::printf("# %s / %s transfer-time ratio: %.2fx%s\n",
                    schemeLabel(left).c_str(),
                    schemeLabel(right).c_str(), left_avg / right_avg,
                    paper_pair ? " (paper: ~5.8x)" : "");
    }
}

/** The Figure 16 time series: flush traffic vs cycles since a
 *  partitioning decision, first scheme of the axis vs second. */
void
printBandwidthTable(const ExperimentResults &results)
{
    const ExperimentSpec &spec = results.spec();
    const std::string &left = spec.schemes.at(0);
    const std::string &right = spec.schemes.at(1);

    // Aggregate the per-decision flush time series over all groups.
    std::vector<std::uint64_t> left_series;
    std::vector<std::uint64_t> right_series;
    std::uint64_t left_lines = 0;
    std::uint64_t right_lines = 0;
    Tick bin = 1;
    for (const auto &group : results.groups()) {
        Cell left_cell;
        left_cell.group = group.name;
        left_cell.scheme = left;
        Cell right_cell;
        right_cell.group = group.name;
        right_cell.scheme = right;
        const auto &u = results.result(left_cell);
        const auto &c = results.result(right_cell);
        bin = c.flush_series_bin;
        left_series.resize(
            std::max(left_series.size(), u.flush_series.size()), 0);
        right_series.resize(
            std::max(right_series.size(), c.flush_series.size()), 0);
        for (std::size_t i = 0; i < u.flush_series.size(); ++i) {
            left_series[i] += u.flush_series[i];
        }
        for (std::size_t i = 0; i < c.flush_series.size(); ++i) {
            right_series[i] += c.flush_series[i];
        }
        left_lines += u.flushed_lines;
        right_lines += c.flushed_lines;
    }

    std::printf("%s\n", spec.title.c_str());
    std::printf("%-16s %12s %12s\n", "cycles",
                schemeLabel(left).c_str(), schemeLabel(right).c_str());
    for (std::size_t i = 0; i < right_series.size(); ++i) {
        std::printf("%-16llu %12llu %12llu\n",
                    static_cast<unsigned long long>(bin * (i + 1)),
                    static_cast<unsigned long long>(
                        i < left_series.size() ? left_series[i] : 0),
                    static_cast<unsigned long long>(right_series[i]));
    }
    // The paper's per-transition totals apply to its own comparison
    // (UCP vs Cooperative) only.
    const bool paper_pair = left == "ucp" && right == "coop";
    std::printf("# total lines flushed: %s=%llu %s=%llu%s\n",
                schemeLabel(left).c_str(),
                static_cast<unsigned long long>(left_lines),
                schemeLabel(right).c_str(),
                static_cast<unsigned long long>(right_lines),
                paper_pair ? " (paper: 6536 vs 5102 per transition)"
                           : "");
}

} // namespace

void
printTable(const ExperimentResults &results, const MetricFn &metric)
{
    const ExperimentSpec &spec = results.spec();
    const MetricFn &fn =
        metric ? metric : metricRegistry().get(spec.metric);
    if (spec.layout == "schemes") {
        printSchemeTable(results, fn);
    } else if (spec.layout == "thresholds") {
        printThresholdTable(results, fn);
    } else if (spec.layout == "partitioners") {
        printPartitionerTable(results, fn);
    } else if (spec.layout == "takeover") {
        printTakeoverTable(results);
    } else if (spec.layout == "transfers") {
        printTransferTable(results);
    } else if (spec.layout == "bandwidth") {
        printBandwidthTable(results);
    } else {
        COOPSIM_FATAL("spec '", spec.name, "' has layout '",
                      spec.layout,
                      "', which has no built-in table renderer");
    }
}

void
printExperiment(const ExperimentSpec &spec)
{
    const ExperimentResults results = runExperiment(spec);
    printTable(results, {});

    // Bank-contention summary on stderr (stats channel, like the
    // executor counters): only when a banked run actually queued, so
    // monolithic sweeps keep their stderr byte-identical.
    std::uint64_t conflicts = 0;
    std::uint64_t conflict_cycles = 0;
    for (const sim::RunKey &key : results.keys()) {
        const sim::RunResult &result = results.result(key);
        conflicts += result.bank_conflicts;
        conflict_cycles += result.bank_conflict_cycles;
    }
    if (conflicts > 0) {
        std::fprintf(stderr,
                     "# banks: conflicts=%llu conflict_cycles=%llu\n",
                     static_cast<unsigned long long>(conflicts),
                     static_cast<unsigned long long>(conflict_cycles));
    }
}

} // namespace coopsim::api
