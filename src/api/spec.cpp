#include "api/spec.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "api/parse_util.hpp"
#include "api/registry.hpp"
#include "common/geometry.hpp"
#include "common/logging.hpp"
#include "trace/spec_profiles.hpp"

namespace coopsim::api
{

using detail::fmtDouble;
using detail::parseDouble;
using detail::parseUint;
using detail::splitWords;

namespace
{

constexpr const char *kSpecMagic = "coopsim-spec v1";

std::string
joinWords(const std::vector<std::string> &words)
{
    std::string out;
    for (const std::string &word : words) {
        out += out.empty() ? "" : " ";
        out += word;
    }
    return out;
}

bool
parseBool(const std::string &text, const char *what)
{
    if (text == "on") {
        return true;
    }
    if (text == "off") {
        return false;
    }
    COOPSIM_FATAL("invalid ", what, " value '", text,
                  "' (expected on or off)");
}

/** The apps named by the solos axis ("*" expands to all of Table 3). */
std::vector<std::string>
resolveSolos(const ExperimentSpec &spec)
{
    std::vector<std::string> apps;
    for (const std::string &name : spec.solos) {
        if (name == "*") {
            for (const std::string &app : trace::allSpecApps()) {
                apps.push_back(app);
            }
        } else {
            apps.push_back(name);
        }
    }
    return apps;
}

} // namespace

void
validateSpec(const ExperimentSpec &spec)
{
    static const char *kLayouts[] = {
        "schemes",  "thresholds", "partitioners", "takeover",
        "transfers", "bandwidth", "none",
    };
    bool layout_known = false;
    for (const char *layout : kLayouts) {
        layout_known = layout_known || spec.layout == layout;
    }
    if (!layout_known) {
        std::string known;
        for (const char *layout : kLayouts) {
            known += known.empty() ? "" : ", ";
            known += layout;
        }
        COOPSIM_FATAL("unknown layout '", spec.layout, "' (expected ",
                      known, ")");
    }
    for (const std::string &scheme : spec.schemes) {
        schemeRegistry().get(scheme);
    }
    for (const std::string &pattern : spec.groups) {
        resolveWorkloads(pattern);
    }
    for (const std::string &mode : spec.threshold_modes) {
        thresholdModeRegistry().get(mode);
    }
    for (const std::string &partitioner : spec.partitioners) {
        partitionerRegistry().get(partitioner);
    }
    for (const std::string &policy : spec.repl) {
        replPolicyRegistry().get(policy);
    }
    for (const std::string &mode : spec.gating) {
        gatingModeRegistry().get(mode);
    }
    for (const std::string &hash : spec.slice_hashes) {
        sliceHashRegistry().get(hash);
    }
    for (const std::string &mode : spec.sampling) {
        samplingRegistry().get(mode);
    }
    if (spec.set_sample_period != 0 &&
        !isPowerOfTwo(spec.set_sample_period)) {
        COOPSIM_FATAL("set_sample_period ", spec.set_sample_period,
                      " must be a power of two (or 0 for the default)");
    }
    scaleRegistry().get(spec.scale);
    for (const std::string &app : resolveSolos(spec)) {
        trace::specProfile(app); // fatal on an unknown benchmark
    }
    if (!spec.groups.empty() && !spec.cores.empty() &&
        resolveSpecGroups(spec).empty()) {
        COOPSIM_FATAL("the cores filter leaves no workload group (the "
                      "groups axis resolves to none of the listed "
                      "core counts)");
    }
    if (spec.layout == "schemes" && !spec.schemes.empty()) {
        bool found = false;
        for (const std::string &scheme : spec.schemes) {
            found = found || scheme == spec.baseline;
        }
        if (!found) {
            COOPSIM_FATAL("baseline scheme '", spec.baseline,
                          "' is not in the spec's schemes axis");
        }
    }
    if (spec.layout == "thresholds") {
        const double baseline =
            parseDouble(spec.baseline, "baseline threshold");
        bool found = false;
        for (const double t : spec.thresholds) {
            found = found || t == baseline;
        }
        if (!found) {
            COOPSIM_FATAL("baseline threshold ", spec.baseline,
                          " is not in the spec's thresholds axis");
        }
    }
    if (spec.layout == "partitioners") {
        bool found = false;
        for (const std::string &partitioner : spec.partitioners) {
            found = found || partitioner == spec.baseline;
        }
        if (!found) {
            COOPSIM_FATAL("baseline partitioner '", spec.baseline,
                          "' is not in the spec's partitioners axis");
        }
    }
    if ((spec.layout == "transfers" || spec.layout == "bandwidth") &&
        spec.schemes.size() < 2) {
        COOPSIM_FATAL("layout '", spec.layout,
                      "' compares the first two schemes; the spec "
                      "names ", spec.schemes.size());
    }
    if (spec.layout == "takeover" && spec.schemes.empty()) {
        COOPSIM_FATAL("layout 'takeover' needs a scheme");
    }
}

std::vector<trace::WorkloadGroup>
resolveSpecGroups(const ExperimentSpec &spec)
{
    std::vector<trace::WorkloadGroup> groups;
    for (const std::string &pattern : spec.groups) {
        for (trace::WorkloadGroup &group : resolveWorkloads(pattern)) {
            if (!spec.cores.empty()) {
                const auto size =
                    static_cast<std::uint32_t>(group.apps.size());
                bool keep = false;
                for (const std::uint32_t cores : spec.cores) {
                    keep = keep || cores == size;
                }
                if (!keep) {
                    continue;
                }
            }
            groups.push_back(std::move(group));
        }
    }
    return groups;
}

std::vector<sim::RunKey>
expandSpec(const ExperimentSpec &spec)
{
    validateSpec(spec);
    const sim::RunScale scale = scaleRegistry().get(spec.scale);

    std::vector<sim::RunKey> keys;
    const std::vector<trace::WorkloadGroup> groups =
        resolveSpecGroups(spec);

    // Group runs: the full cross-product, groups outermost so all
    // cells of one table row are adjacent in the queue.
    for (const trace::WorkloadGroup &group : groups) {
        const auto cores =
            static_cast<std::uint32_t>(group.apps.size());
        for (const std::string &scheme : spec.schemes) {
            for (const double threshold : spec.thresholds) {
                for (const std::string &tmode : spec.threshold_modes) {
                  for (const std::string &part : spec.partitioners) {
                    for (const std::string &policy : spec.repl) {
                      for (const std::string &gating : spec.gating) {
                        for (const std::uint32_t banks : spec.banks) {
                          for (const std::string &hash :
                               spec.slice_hashes) {
                           for (const std::string &samp :
                                spec.sampling) {
                            for (const std::uint64_t seed : spec.seeds) {
                                sim::RunKey key;
                                key.kind = sim::RunKey::Kind::Group;
                                key.scheme = scheme;
                                key.name = group.name;
                                key.num_cores = cores;
                                key.scale = scale;
                                key.threshold = threshold;
                                key.threshold_mode =
                                    thresholdModeRegistry().get(tmode);
                                key.partitioner =
                                    partitionerRegistry().get(part);
                                key.repl =
                                    replPolicyRegistry().get(policy);
                                key.gating =
                                    gatingModeRegistry().get(gating);
                                key.seed = seed;
                                key.banks = banks;
                                key.slice_hash =
                                    sliceHashRegistry().get(hash);
                                // Knobs that don't apply to the mode
                                // are zeroed so keys stay canonical
                                // (exact keys carry no sampling state
                                // and format byte-identically to the
                                // pre-sampling encoding).
                                const sampling::Mode mode =
                                    samplingRegistry().get(samp);
                                key.sampling = mode;
                                key.set_sample_period =
                                    sampling::setSampled(mode)
                                        ? spec.set_sample_period
                                        : 0;
                                key.op_sample_windows =
                                    mode != sampling::Mode::Exact
                                        ? spec.op_sample_windows
                                        : 0;
                                keys.push_back(std::move(key));
                            }
                           }
                          }
                        }
                      }
                    }
                  }
                }
            }
        }
    }

    // Solo baselines: scheme-only fields are normalised (see
    // sim::soloKey), so the solo axes are (app x cores x repl x seed).
    // Shared apps across groups are deduplicated.
    std::unordered_set<sim::RunKey, sim::RunKeyHash> seen;
    auto add_solo = [&](const std::string &app, std::uint32_t cores) {
        for (const std::string &policy : spec.repl) {
          for (const std::string &samp : spec.sampling) {
            for (const std::uint64_t seed : spec.seeds) {
                sim::RunKey key;
                key.kind = sim::RunKey::Kind::Solo;
                key.scheme = "unmanaged";
                key.name = app;
                key.num_cores = cores;
                key.scale = scale;
                key.threshold = 0.0;
                key.threshold_mode =
                    partition::ThresholdMode::MissRatio;
                key.partitioner = partition::Partitioner::Lookahead;
                key.repl = replPolicyRegistry().get(policy);
                key.gating = llc::GatingMode::GatedVdd;
                key.seed = seed;
                // Banking is normalised like the scheme-only fields:
                // the solo baseline runs on the topology's default
                // organisation regardless of the sweep's banks axis.
                key.banks = 0;
                key.slice_hash = llc::SliceHashKind::Mod;
                // Sampling, however, is inherited: a sampled sweep's
                // solo baselines are sampled too (that is where most
                // of a with_solo sweep's time goes), and the
                // estimator error is carried into the metric CI.
                const sampling::Mode mode =
                    samplingRegistry().get(samp);
                key.sampling = mode;
                key.set_sample_period =
                    sampling::setSampled(mode) ? spec.set_sample_period
                                               : 0;
                key.op_sample_windows =
                    mode != sampling::Mode::Exact
                        ? spec.op_sample_windows
                        : 0;
                if (seen.insert(key).second) {
                    keys.push_back(std::move(key));
                }
            }
          }
        }
    };
    if (spec.with_solo) {
        for (const trace::WorkloadGroup &group : groups) {
            const auto cores =
                static_cast<std::uint32_t>(group.apps.size());
            for (const std::string &app : group.apps) {
                add_solo(app, cores);
            }
        }
    }
    for (const std::string &app : resolveSolos(spec)) {
        add_solo(app, spec.solo_cores);
    }
    return keys;
}

std::vector<sim::RunKey>
shardKeys(const std::vector<sim::RunKey> &keys, unsigned index,
          unsigned count)
{
    if (count < 1) {
        COOPSIM_FATAL("shard count must be at least 1");
    }
    if (index >= count) {
        COOPSIM_FATAL("shard index ", index, " out of range for ",
                      count, " shards (need 0 <= I < N)");
    }
    std::vector<sim::RunKey> slice;
    slice.reserve(keys.size() / count + 1);
    for (std::size_t i = index; i < keys.size(); i += count) {
        slice.push_back(keys[i]);
    }
    return slice;
}

// ---------------------------------------------------------------------------
// Canonical text encoding

std::string
formatSpec(const ExperimentSpec &spec)
{
    std::string out = kSpecMagic;
    out += "\n";
    auto line = [&out](const char *key, const std::string &value) {
        out += key;
        if (!value.empty()) {
            out += " ";
            out += value;
        }
        out += "\n";
    };
    line("name", spec.name);
    line("title", spec.title);
    line("layout", spec.layout);
    line("metric", spec.metric);
    line("baseline", spec.baseline);
    line("higher_better", spec.higher_better ? "on" : "off");
    line("with_solo", spec.with_solo ? "on" : "off");
    line("schemes", joinWords(spec.schemes));
    line("groups", joinWords(spec.groups));
    {
        std::vector<std::string> words;
        for (const std::uint32_t cores : spec.cores) {
            words.push_back(std::to_string(cores));
        }
        line("cores", joinWords(words));
    }
    {
        std::vector<std::string> words;
        for (const double t : spec.thresholds) {
            words.push_back(fmtDouble(t));
        }
        line("thresholds", joinWords(words));
    }
    line("threshold_modes", joinWords(spec.threshold_modes));
    line("partitioners", joinWords(spec.partitioners));
    line("repl", joinWords(spec.repl));
    line("gating", joinWords(spec.gating));
    {
        std::vector<std::string> words;
        for (const std::uint64_t seed : spec.seeds) {
            words.push_back(std::to_string(seed));
        }
        line("seeds", joinWords(words));
    }
    {
        std::vector<std::string> words;
        for (const std::uint32_t banks : spec.banks) {
            words.push_back(std::to_string(banks));
        }
        line("banks", joinWords(words));
    }
    line("slice_hashes", joinWords(spec.slice_hashes));
    line("sampling", joinWords(spec.sampling));
    line("set_sample_period", std::to_string(spec.set_sample_period));
    line("op_sample_windows", std::to_string(spec.op_sample_windows));
    line("scale", spec.scale);
    line("solos", joinWords(spec.solos));
    line("solo_cores", std::to_string(spec.solo_cores));
    return out;
}

ExperimentSpec
parseSpec(const std::string &text)
{
    std::istringstream stream(text);
    std::string line;
    if (!std::getline(stream, line) || line != kSpecMagic) {
        COOPSIM_FATAL("not a coopsim spec (expected first line '",
                      kSpecMagic, "', got '", line, "')");
    }

    ExperimentSpec spec;
    // The defaulted axes are replaced, not appended to, when the key
    // appears.
    while (std::getline(stream, line)) {
        if (line.empty() || line[0] == '#') {
            continue;
        }
        const std::size_t space = line.find(' ');
        const std::string key = line.substr(0, space);
        const std::string value =
            space == std::string::npos ? "" : line.substr(space + 1);

        if (key == "name") {
            spec.name = value;
        } else if (key == "title") {
            spec.title = value;
        } else if (key == "layout") {
            spec.layout = value;
        } else if (key == "metric") {
            spec.metric = value;
        } else if (key == "baseline") {
            spec.baseline = value;
        } else if (key == "higher_better") {
            spec.higher_better = parseBool(value, "higher_better");
        } else if (key == "with_solo") {
            spec.with_solo = parseBool(value, "with_solo");
        } else if (key == "schemes") {
            spec.schemes = splitWords(value);
        } else if (key == "groups") {
            spec.groups = splitWords(value);
        } else if (key == "cores") {
            spec.cores.clear();
            for (const std::string &word : splitWords(value)) {
                spec.cores.push_back(static_cast<std::uint32_t>(
                    parseUint(word, "cores")));
            }
        } else if (key == "thresholds") {
            spec.thresholds.clear();
            for (const std::string &word : splitWords(value)) {
                spec.thresholds.push_back(
                    parseDouble(word, "threshold"));
            }
        } else if (key == "threshold_modes") {
            spec.threshold_modes = splitWords(value);
        } else if (key == "partitioners") {
            spec.partitioners = splitWords(value);
        } else if (key == "repl") {
            spec.repl = splitWords(value);
        } else if (key == "gating") {
            spec.gating = splitWords(value);
        } else if (key == "seeds") {
            spec.seeds.clear();
            for (const std::string &word : splitWords(value)) {
                spec.seeds.push_back(parseUint(word, "seed"));
            }
        } else if (key == "banks") {
            spec.banks.clear();
            for (const std::string &word : splitWords(value)) {
                spec.banks.push_back(static_cast<std::uint32_t>(
                    parseUint(word, "banks")));
            }
        } else if (key == "slice_hashes") {
            spec.slice_hashes = splitWords(value);
        } else if (key == "sampling") {
            spec.sampling = splitWords(value);
        } else if (key == "set_sample_period") {
            spec.set_sample_period = static_cast<std::uint32_t>(
                parseUint(value, "set_sample_period"));
        } else if (key == "op_sample_windows") {
            spec.op_sample_windows = static_cast<std::uint32_t>(
                parseUint(value, "op_sample_windows"));
        } else if (key == "scale") {
            spec.scale = value;
        } else if (key == "solos") {
            spec.solos = splitWords(value);
        } else if (key == "solo_cores") {
            spec.solo_cores = static_cast<std::uint32_t>(
                parseUint(value, "solo_cores"));
        } else {
            COOPSIM_FATAL("unknown spec key '", key, "'");
        }
    }
    return spec;
}

ExperimentSpec
parseSpecFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file) {
        COOPSIM_FATAL("cannot open spec file '", path, "'");
    }
    std::ostringstream text;
    text << file.rdbuf();
    return parseSpec(text.str());
}

std::string
formatRunKey(const sim::RunKey &key)
{
    std::string out =
        key.kind == sim::RunKey::Kind::Group ? "group" : "solo";
    auto field = [&out](const char *name, const std::string &value) {
        out += " ";
        out += name;
        out += "=";
        out += value;
    };
    field("scheme", key.scheme);
    field("name", key.name);
    field("cores", std::to_string(key.num_cores));
    field("scale", scaleKeyOf(key.scale));
    field("threshold", fmtDouble(key.threshold));
    field("tmode", thresholdModeKeyOf(key.threshold_mode));
    field("partitioner", partitionerKeyOf(key.partitioner));
    field("repl", replPolicyKeyOf(key.repl));
    field("gating", gatingModeKeyOf(key.gating));
    field("seed", std::to_string(key.seed));
    // Banking fields are appended only when non-default so every
    // pre-banking key line (and store entry) stays byte-stable.
    if (key.banks != 0 ||
        key.slice_hash != llc::SliceHashKind::Mod) {
        field("banks", std::to_string(key.banks));
        field("slice-hash", sliceHashKeyOf(key.slice_hash));
    }
    // Sampling fields follow the same rule: exact keys (the default)
    // carry none, so every pre-sampling key line stays byte-stable.
    if (key.sampling != sampling::Mode::Exact) {
        field("sampling", samplingKeyOf(key.sampling));
        field("sample-period", std::to_string(key.set_sample_period));
        field("op-windows", std::to_string(key.op_sample_windows));
    }
    return out;
}

bool
tryParseRunKey(const std::string &line, sim::RunKey &out)
{
    const std::vector<std::string> words = splitWords(line);
    if (words.empty() ||
        (words[0] != "group" && words[0] != "solo")) {
        return false;
    }
    sim::RunKey key;
    key.kind = words[0] == "group" ? sim::RunKey::Kind::Group
                                   : sim::RunKey::Kind::Solo;
    for (std::size_t i = 1; i < words.size(); ++i) {
        const std::size_t eq = words[i].find('=');
        if (eq == std::string::npos) {
            return false;
        }
        const std::string name = words[i].substr(0, eq);
        const std::string value = words[i].substr(eq + 1);
        if (name == "scheme") {
            if (!schemeRegistry().contains(value)) {
                return false;
            }
            key.scheme = value;
        } else if (name == "name") {
            key.name = value;
        } else if (name == "cores") {
            std::uint64_t cores = 0;
            if (!detail::tryParseUint(value, cores)) {
                return false;
            }
            key.num_cores = static_cast<std::uint32_t>(cores);
        } else if (name == "scale") {
            const sim::RunScale *scale = scaleRegistry().find(value);
            if (scale == nullptr) {
                return false;
            }
            key.scale = *scale;
        } else if (name == "threshold") {
            if (!detail::tryParseDouble(value, key.threshold)) {
                return false;
            }
        } else if (name == "tmode") {
            const partition::ThresholdMode *mode =
                thresholdModeRegistry().find(value);
            if (mode == nullptr) {
                return false;
            }
            key.threshold_mode = *mode;
        } else if (name == "partitioner") {
            const partition::Partitioner *partitioner =
                partitionerRegistry().find(value);
            if (partitioner == nullptr) {
                return false;
            }
            key.partitioner = *partitioner;
        } else if (name == "repl") {
            const cache::ReplPolicy *repl =
                replPolicyRegistry().find(value);
            if (repl == nullptr) {
                return false;
            }
            key.repl = *repl;
        } else if (name == "gating") {
            const llc::GatingMode *gating =
                gatingModeRegistry().find(value);
            if (gating == nullptr) {
                return false;
            }
            key.gating = *gating;
        } else if (name == "seed") {
            if (!detail::tryParseUint(value, key.seed)) {
                return false;
            }
        } else if (name == "banks") {
            std::uint64_t banks = 0;
            if (!detail::tryParseUint(value, banks)) {
                return false;
            }
            key.banks = static_cast<std::uint32_t>(banks);
        } else if (name == "slice-hash") {
            const llc::SliceHashKind *hash =
                sliceHashRegistry().find(value);
            if (hash == nullptr) {
                return false;
            }
            key.slice_hash = *hash;
        } else if (name == "sampling") {
            const sampling::Mode *mode = samplingRegistry().find(value);
            if (mode == nullptr) {
                return false;
            }
            key.sampling = *mode;
        } else if (name == "sample-period") {
            std::uint64_t period = 0;
            if (!detail::tryParseUint(value, period)) {
                return false;
            }
            key.set_sample_period = static_cast<std::uint32_t>(period);
        } else if (name == "op-windows") {
            std::uint64_t windows = 0;
            if (!detail::tryParseUint(value, windows)) {
                return false;
            }
            key.op_sample_windows =
                static_cast<std::uint32_t>(windows);
        } else {
            return false;
        }
    }
    out = std::move(key);
    return true;
}

sim::RunKey
parseRunKey(const std::string &line)
{
    sim::RunKey key;
    if (!tryParseRunKey(line, key)) {
        COOPSIM_FATAL("invalid run key line '", line, "'");
    }
    return key;
}

} // namespace coopsim::api
