#include "llc/banked.hpp"

#include "common/geometry.hpp"
#include "common/logging.hpp"

namespace coopsim::llc
{

namespace
{

/** The per-bank slice of @p config's total geometry. */
LlcConfig
bankConfig(const LlcConfig &config, std::uint32_t bank)
{
    LlcConfig slice = config;
    slice.geometry.size_bytes = config.geometry.size_bytes / config.banks;
    slice.banks = 1;
    slice.slice_hash = SliceHashKind::Mod;
    if (bank > 0) {
        slice.seed = config.seed +
                     std::uint64_t{bank} * std::uint64_t{0x9e3779b9};
    }
    return slice;
}

} // namespace

BankedLlc::BankedLlc(const LlcConfig &config, mem::DramModel &dram,
                     const BankFactory &factory)
    : config_(config),
      hash_([&] {
          const std::uint64_t row_bytes =
              std::uint64_t{config.geometry.ways} *
              config.geometry.block_bytes;
          const std::uint64_t total_sets =
              config.geometry.size_bytes / row_bytes;
          if (config.banks == 0 || !isPowerOfTwo(config.banks)) {
              COOPSIM_FATAL("banked LLC with ", config.banks,
                            " banks: bank count must be a power of two "
                            "so set-interleaving divides the ",
                            total_sets, " sets evenly");
          }
          if (config.banks > total_sets) {
              COOPSIM_FATAL("banked LLC with ", config.banks,
                            " banks but only ", total_sets,
                            " sets: need at least one set per bank");
          }
          return SliceHash(config.slice_hash, config.banks,
                           config.geometry.block_bytes,
                           total_sets / config.banks);
      }()),
      busy_until_(config.banks, 0)
{
    banks_.reserve(config_.banks);
    for (std::uint32_t b = 0; b < config_.banks; ++b) {
        banks_.push_back(factory(bankConfig(config_, b), dram));
    }
    merged_flush_series_.configure(config_.flush_series_bin,
                                   config_.flush_series_bins);
}

Cycle
BankedLlc::portAccess(Addr addr, Cycle now)
{
    if (config_.banks <= 1) {
        return now;
    }
    const std::uint32_t b = hash_.bank(addr);
    Cycle start = now;
    Cycle &busy = busy_until_[b];
    if (busy > now) {
        start = busy;
        ++conflicts_;
        conflict_cycles_ += busy - now;
    }
    busy = start + config_.bank_occupancy_cycles;
    return start;
}

LlcAccess
BankedLlc::access(CoreId core, Addr addr, AccessType type, Cycle now)
{
    const Cycle start = portAccess(addr, now);
    return banks_[hash_.bank(addr)]->access(core, addr, type, start);
}

void
BankedLlc::epoch(Cycle now)
{
    for (auto &bank : banks_) {
        bank->epoch(now);
    }
}

double
BankedLlc::poweredWays() const
{
    // Mean over banks: keeps the value on the per-slice way scale the
    // monolithic schemes report (a fully powered banked LLC reads
    // geometry.ways, not banks * ways).
    double total = 0.0;
    for (const auto &bank : banks_) {
        total += bank->poweredWays();
    }
    return total / static_cast<double>(banks_.size());
}

std::vector<std::uint32_t>
BankedLlc::allocation() const
{
    // Per-core total ways owned across all banks.
    std::vector<std::uint32_t> total(config_.num_cores, 0);
    for (const auto &bank : banks_) {
        const std::vector<std::uint32_t> alloc = bank->allocation();
        for (std::size_t c = 0; c < alloc.size() && c < total.size();
             ++c) {
            total[c] += alloc[c];
        }
    }
    return total;
}

Scheme
BankedLlc::scheme() const
{
    return banks_.front()->scheme();
}

void
BankedLlc::integrateStatic(Cycle now)
{
    for (auto &bank : banks_) {
        bank->integrateStatic(now);
    }
}

void
BankedLlc::resetStats(Cycle now)
{
    for (auto &bank : banks_) {
        bank->resetStats(now);
    }
    conflicts_ = 0;
    conflict_cycles_ = 0;
}

const CoreLlcStats &
BankedLlc::coreStats(CoreId core) const
{
    COOPSIM_ASSERT(core < config_.num_cores, "core id out of range");
    merged_core_stats_.assign(config_.num_cores, CoreLlcStats{});
    for (const auto &bank : banks_) {
        for (CoreId c = 0; c < config_.num_cores; ++c) {
            const CoreLlcStats &bs = bank->coreStats(c);
            CoreLlcStats &ms = merged_core_stats_[c];
            ms.accesses.inc(bs.accesses.value());
            ms.hits.inc(bs.hits.value());
            ms.misses.inc(bs.misses.value());
            ms.writebacks.inc(bs.writebacks.value());
            ms.bypasses.inc(bs.bypasses.value());
        }
    }
    return merged_core_stats_[core];
}

const TakeoverEventStats &
BankedLlc::takeoverEvents() const
{
    merged_events_ = TakeoverEventStats{};
    for (const auto &bank : banks_) {
        const TakeoverEventStats &es = bank->takeoverEvents();
        merged_events_.donor_hits.inc(es.donor_hits.value());
        merged_events_.donor_misses.inc(es.donor_misses.value());
        merged_events_.recipient_hits.inc(es.recipient_hits.value());
        merged_events_.recipient_misses.inc(
            es.recipient_misses.value());
    }
    return merged_events_;
}

const stats::TimeSeries &
BankedLlc::flushSeries() const
{
    merged_flush_series_.reset();
    for (const auto &bank : banks_) {
        const stats::TimeSeries &series = bank->flushSeries();
        for (std::size_t i = 0; i < series.bins(); ++i) {
            if (series.bin(i) > 0) {
                merged_flush_series_.record(
                    static_cast<Tick>(i) * series.binWidth(),
                    series.bin(i));
            }
        }
    }
    return merged_flush_series_;
}

const std::vector<double> &
BankedLlc::transferDurations() const
{
    merged_transfer_durations_.clear();
    for (const auto &bank : banks_) {
        const std::vector<double> &durations =
            bank->transferDurations();
        merged_transfer_durations_.insert(
            merged_transfer_durations_.end(), durations.begin(),
            durations.end());
    }
    return merged_transfer_durations_;
}

std::uint64_t
BankedLlc::flushedLines() const
{
    std::uint64_t total = 0;
    for (const auto &bank : banks_) {
        total += bank->flushedLines();
    }
    return total;
}

std::uint64_t
BankedLlc::epochsRun() const
{
    // Banks run epochs in lockstep; report one bank's count so the
    // value stays comparable to the monolithic LLC's.
    return banks_.front()->epochsRun();
}

std::uint64_t
BankedLlc::repartitions() const
{
    std::uint64_t total = 0;
    for (const auto &bank : banks_) {
        total += bank->repartitions();
    }
    return total;
}

energy::EnergyTotals
BankedLlc::energyTotals() const
{
    energy::EnergyTotals total;
    for (const auto &bank : banks_) {
        const energy::EnergyTotals &bt = bank->energy().totals();
        total.tag_nj += bt.tag_nj;
        total.data_nj += bt.data_nj;
        total.monitor_nj += bt.monitor_nj;
        total.drain_nj += bt.drain_nj;
        total.static_nj += bt.static_nj;
    }
    return total;
}

double
BankedLlc::avgWaysProbed() const
{
    std::uint64_t probed = 0;
    std::uint64_t accesses = 0;
    for (const auto &bank : banks_) {
        probed += bank->energy().waysProbedSum();
        accesses += bank->energy().accesses();
    }
    return accesses > 0
               ? static_cast<double>(probed) /
                     static_cast<double>(accesses)
               : 0.0;
}

} // namespace coopsim::llc
