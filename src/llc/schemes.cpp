#include "llc/schemes.hpp"

#include <algorithm>
#include <bit>

#include "common/logging.hpp"

namespace coopsim::llc
{

using cache::fullMask;
using cache::WayMask;

// ---------------------------------------------------------------------------
// MonitorBank

MonitorBank::MonitorBank(const LlcConfig &config)
{
    umon::UmonConfig uc;
    uc.llc_sets = config.geometry.numSets();
    uc.llc_ways = config.geometry.ways;
    uc.block_bytes = config.geometry.block_bytes;
    uc.sample_period = config.umon_sample_period;
    monitors_.reserve(config.num_cores);
    for (std::uint32_t c = 0; c < config.num_cores; ++c) {
        monitors_.emplace_back(uc);
    }
}

void
MonitorBank::observe(CoreId core, Addr addr)
{
    COOPSIM_ASSERT(core < monitors_.size(), "monitor core out of range");
    monitors_[core].access(addr);
}

std::vector<partition::AppDemand>
MonitorBank::demands() const
{
    std::vector<partition::AppDemand> out;
    out.reserve(monitors_.size());
    for (const auto &m : monitors_) {
        partition::AppDemand d;
        d.miss_curve = m.missCurve();
        d.accesses = static_cast<double>(m.accessCount());
        out.push_back(std::move(d));
    }
    return out;
}

void
MonitorBank::decay()
{
    for (auto &m : monitors_) {
        m.decay();
    }
}

const umon::UtilityMonitor &
MonitorBank::monitor(CoreId core) const
{
    COOPSIM_ASSERT(core < monitors_.size(), "monitor core out of range");
    return monitors_[core];
}

// ---------------------------------------------------------------------------
// UnmanagedLlc

UnmanagedLlc::UnmanagedLlc(const LlcConfig &config, mem::DramModel &dram)
    : BaseLlc(config, dram, /*has_partition_hw=*/false)
{
}

LlcAccess
UnmanagedLlc::access(CoreId core, Addr addr, AccessType type, Cycle now)
{
    integrateStatic(now);
    const WayMask all = fullMask(array_.ways());
    const Addr aligned = array_.slicer().blockAlign(addr);
    const SetId set = array_.slicer().set(aligned);
    const std::uint32_t probed = array_.ways();

    const auto found = array_.lookup(aligned, all);
    if (found.hit) {
        array_.touch(set, found.way);
        if (isWrite(type)) {
            array_.setDirty(set, found.way, true);
        }
        chargeAccess(core, probed, true, !isWrite(type), isWrite(type),
                     false);
        return {true, false, now + config_.hit_latency, probed};
    }

    const WayId victim = array_.victim(set, all);
    if (array_.validAt(set, victim) && array_.dirtyAt(set, victim)) {
        dram_.writeback(array_.blockAddr(set, victim), now);
        core_stats_[core].writebacks.inc();
    }
    const Cycle done = dram_.access(aligned, type, now);
    array_.insert(aligned, set, victim, core, isWrite(type));
    chargeAccess(core, probed, false, false, true, false);
    return {false, false, done + config_.hit_latency, probed};
}

std::vector<std::uint32_t>
UnmanagedLlc::allocation() const
{
    // No logical partition: report an even split for inspection.
    return std::vector<std::uint32_t>(
        config_.num_cores, config_.geometry.ways / config_.num_cores);
}

// ---------------------------------------------------------------------------
// FairShareLlc

FairShareLlc::FairShareLlc(const LlcConfig &config, mem::DramModel &dram)
    : BaseLlc(config, dram, /*has_partition_hw=*/false),
      masks_(config.num_cores, 0)
{
    const std::uint32_t ways = config.geometry.ways;
    const std::uint32_t cores = config.num_cores;
    // Round-robin so a non-divisible split stays within one way.
    for (std::uint32_t w = 0; w < ways; ++w) {
        masks_[w % cores] |= WayMask{1} << w;
    }
}

LlcAccess
FairShareLlc::access(CoreId core, Addr addr, AccessType type, Cycle now)
{
    integrateStatic(now);
    COOPSIM_ASSERT(core < masks_.size(), "core out of range");
    const WayMask mask = masks_[core];
    const Addr aligned = array_.slicer().blockAlign(addr);
    const SetId set = array_.slicer().set(aligned);
    const auto probed =
        static_cast<std::uint32_t>(std::popcount(mask));

    const auto found = array_.lookup(aligned, mask);
    if (found.hit) {
        array_.touch(set, found.way);
        if (isWrite(type)) {
            array_.setDirty(set, found.way, true);
        }
        chargeAccess(core, probed, true, !isWrite(type), isWrite(type),
                     false);
        return {true, false, now + config_.hit_latency, probed};
    }

    const WayId victim = array_.victim(set, mask);
    if (array_.validAt(set, victim) && array_.dirtyAt(set, victim)) {
        dram_.writeback(array_.blockAddr(set, victim), now);
        core_stats_[core].writebacks.inc();
    }
    const Cycle done = dram_.access(aligned, type, now);
    array_.insert(aligned, set, victim, core, isWrite(type));
    chargeAccess(core, probed, false, false, true, false);
    return {false, false, done + config_.hit_latency, probed};
}

std::vector<std::uint32_t>
FairShareLlc::allocation() const
{
    std::vector<std::uint32_t> alloc;
    alloc.reserve(masks_.size());
    for (const WayMask m : masks_) {
        alloc.push_back(static_cast<std::uint32_t>(std::popcount(m)));
    }
    return alloc;
}

// ---------------------------------------------------------------------------
// UcpLlc

UcpLlc::UcpLlc(const LlcConfig &config, mem::DramModel &dram)
    : BaseLlc(config, dram, /*has_partition_hw=*/true),
      monitors_(config),
      alloc_(config.num_cores, config.geometry.ways / config.num_cores),
      trackers_(config.num_cores)
{
}

WayId
UcpLlc::pickVictim(CoreId core, SetId set)
{
    const WayMask all = fullMask(array_.ways());

    // Invalid ways first.
    for (std::uint32_t w = 0; w < array_.ways(); ++w) {
        if (!array_.validAt(set, w)) {
            return w;
        }
    }

    // Per-core occupancy of this set.
    std::vector<std::uint32_t> counts(config_.num_cores, 0);
    for (std::uint32_t w = 0; w < array_.ways(); ++w) {
        const CoreId owner = array_.ownerAt(set, w);
        if (array_.validAt(set, w) && owner < config_.num_cores) {
            ++counts[owner];
        }
    }

    if (counts[core] < alloc_[core]) {
        // Under quota: take the LRU block of an over-quota core.
        WayMask over = 0;
        for (std::uint32_t w = 0; w < array_.ways(); ++w) {
            const CoreId owner = array_.ownerAt(set, w);
            if (array_.validAt(set, w) && owner < config_.num_cores &&
                owner != core && counts[owner] > alloc_[owner]) {
                over |= WayMask{1} << w;
            }
        }
        if (over != 0) {
            return array_.lruValidWay(set, over);
        }
    }

    // At (or above) quota, or nobody to take from: evict own LRU block.
    WayMask own = 0;
    for (std::uint32_t w = 0; w < array_.ways(); ++w) {
        if (array_.validAt(set, w) && array_.ownerAt(set, w) == core) {
            own |= WayMask{1} << w;
        }
    }
    if (own != 0) {
        return array_.lruValidWay(set, own);
    }
    return array_.lruValidWay(set, all);
}

void
UcpLlc::noteTakenBlock(CoreId recipient, SetId set, Cycle now)
{
    TransferTracker &t = trackers_[recipient];
    if (t.ways_pending == 0) {
        return;
    }
    ++t.per_set[set];
    if (t.per_set[set] == t.current_target) {
        ++t.sets_at_target;
        if (t.sets_at_target == array_.numSets()) {
            // One more logical way fully realised across all sets.
            transfer_durations_.push_back(
                static_cast<double>(now - t.started));
            --t.ways_pending;
            ++t.current_target;
            t.sets_at_target = 0;
            for (const std::uint32_t c : t.per_set) {
                if (c >= t.current_target) {
                    ++t.sets_at_target;
                }
            }
        }
    }
}

LlcAccess
UcpLlc::access(CoreId core, Addr addr, AccessType type, Cycle now)
{
    integrateStatic(now);
    const WayMask all = fullMask(array_.ways());
    const Addr aligned = array_.slicer().blockAlign(addr);
    const SetId set = array_.slicer().set(aligned);
    const std::uint32_t probed = array_.ways();

    monitors_.observe(core, aligned);

    const auto found = array_.lookup(aligned, all);
    if (found.hit) {
        array_.touch(set, found.way);
        if (isWrite(type)) {
            array_.setDirty(set, found.way, true);
        }
        // UCP hits re-tag the block to the accessor (multiprogrammed
        // workloads have disjoint address spaces, so the owner can only
        // "change" through this path if the same core re-touches it).
        array_.setOwner(set, found.way, core);
        chargeAccess(core, probed, true, !isWrite(type), isWrite(type),
                     true);
        return {true, false, now + config_.hit_latency, probed};
    }

    const WayId victim = pickVictim(core, set);
    if (array_.validAt(set, victim)) {
        const bool foreign = array_.ownerAt(set, victim) != core;
        if (array_.dirtyAt(set, victim)) {
            dram_.writeback(array_.blockAddr(set, victim), now);
            core_stats_[core].writebacks.inc();
            if (foreign) {
                // A donor line displaced during repartitioning: this is
                // UCP's flush traffic (Figs 15/16).
                recordFlush(now);
            }
        }
        if (foreign) {
            noteTakenBlock(core, set, now);
        }
    }
    const Cycle done = dram_.access(aligned, type, now);
    array_.insert(aligned, set, victim, core, isWrite(type));
    chargeAccess(core, probed, false, false, true, true);
    return {false, false, done + config_.hit_latency, probed};
}

void
UcpLlc::epoch(Cycle now)
{
    BaseLlc::epoch(now);

    partition::LookaheadConfig lc;
    lc.threshold = 0.0; // plain UCP: no turn-off threshold
    lc.min_ways_per_app = config_.min_ways_per_core;
    const partition::Allocation next = partition::decidePartition(
        config_.partitioner, monitors_.demands(),
        config_.geometry.ways, lc);

    if (next.ways != alloc_) {
        repartitions_.inc();
        setFlushOrigin(now);
        for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
            if (next.ways[c] > alloc_[c]) {
                TransferTracker &t = trackers_[c];
                t.recipient = c;
                t.ways_pending = next.ways[c] - alloc_[c];
                t.current_target = 1;
                t.started = now;
                t.per_set.assign(array_.numSets(), 0);
                t.sets_at_target = 0;
            }
        }
        alloc_ = next.ways;
    }
    monitors_.decay();
}

// ---------------------------------------------------------------------------
// DynamicCpeLlc

DynamicCpeLlc::DynamicCpeLlc(const LlcConfig &config, mem::DramModel &dram)
    : BaseLlc(config, dram, /*has_partition_hw=*/true),
      monitors_(config),
      alloc_(config.num_cores, config.geometry.ways / config.num_cores),
      masks_(config.num_cores, 0),
      rng_(config.seed ^ 0xc0ffee)
{
    for (std::uint32_t w = 0; w < config.geometry.ways; ++w) {
        masks_[w % config.num_cores] |= WayMask{1} << w;
    }
}

double
DynamicCpeLlc::poweredWays() const
{
    return static_cast<double>(config_.geometry.ways -
                               std::popcount(off_mask_));
}

LlcAccess
DynamicCpeLlc::access(CoreId core, Addr addr, AccessType type, Cycle now)
{
    integrateStatic(now);
    // A repartition flush blocks the whole LLC (the cost the paper's
    // Dynamic CPE pays on every change).
    const Cycle start = std::max(now, busy_until_);

    const WayMask mask = masks_[core];
    const Addr aligned = array_.slicer().blockAlign(addr);
    const SetId set = array_.slicer().set(aligned);
    const auto probed =
        static_cast<std::uint32_t>(std::popcount(mask));

    monitors_.observe(core, aligned);

    if (mask == 0) {
        core_stats_[core].bypasses.inc();
        const Cycle done = dram_.access(aligned, type, start);
        chargeAccess(core, 0, false, false, false, true);
        return {false, true, done, 0};
    }

    const auto found = array_.lookup(aligned, mask);
    if (found.hit) {
        array_.touch(set, found.way);
        if (isWrite(type)) {
            array_.setDirty(set, found.way, true);
        }
        chargeAccess(core, probed, true, !isWrite(type), isWrite(type),
                     true);
        return {true, false, start + config_.hit_latency, probed};
    }

    const WayId victim = array_.victim(set, mask);
    if (array_.validAt(set, victim) && array_.dirtyAt(set, victim)) {
        COOPSIM_ASSERT(array_.ownerAt(set, victim) == core,
                       "CPE way holds a foreign dirty block");
        dram_.writeback(array_.blockAddr(set, victim), start);
        core_stats_[core].writebacks.inc();
    }
    const Cycle done = dram_.access(aligned, type, start);
    array_.insert(aligned, set, victim, core, isWrite(type));
    chargeAccess(core, probed, false, false, true, true);
    return {false, false, done + config_.hit_latency, probed};
}

void
DynamicCpeLlc::applyAllocation(const std::vector<std::uint32_t> &next,
                               Cycle now)
{
    if (next == alloc_) {
        return;
    }
    repartitions_.inc();
    setFlushOrigin(now);

    // Express current ownership for the planner.
    std::vector<std::vector<WayId>> owned(config_.num_cores);
    for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
        for (WayMask m = masks_[c]; m != 0; m &= m - 1) {
            owned[c].push_back(cache::lowestWay(m));
        }
    }
    std::vector<WayId> off;
    for (WayMask m = off_mask_; m != 0; m &= m - 1) {
        off.push_back(cache::lowestWay(m));
    }

    const partition::TransitionPlan plan =
        partition::planTransition(owned, off, next, rng_);

    // CPE realises the new partition immediately: every way changing
    // hands (or powering off) is flushed and invalidated on the spot.
    Cycle flush_done = now;
    auto drain_way = [&](WayId way) {
        for (SetId s = 0; s < array_.numSets(); ++s) {
            const cache::CacheBlock &blk = array_.block(s, way);
            if (!blk.valid) {
                continue;
            }
            if (blk.dirty) {
                const Cycle done =
                    dram_.flush(array_.blockAddr(s, way), now);
                flush_done = std::max(flush_done, done);
                recordFlush(now);
            }
            array_.invalidate(s, way);
        }
    };

    for (const auto &t : plan.transfers) {
        drain_way(t.way);
        masks_[t.donor] &= ~(WayMask{1} << t.way);
        masks_[t.recipient] |= WayMask{1} << t.way;
    }
    for (const auto &d : plan.drains) {
        drain_way(d.way);
        masks_[d.donor] &= ~(WayMask{1} << d.way);
        off_mask_ |= WayMask{1} << d.way;
    }
    for (const auto &p : plan.power_ons) {
        off_mask_ &= ~(WayMask{1} << p.way);
        masks_[p.recipient] |= WayMask{1} << p.way;
    }

    busy_until_ = std::max(busy_until_, flush_done);
    alloc_ = next;
}

void
DynamicCpeLlc::epoch(Cycle now)
{
    BaseLlc::epoch(now);

    // The "profile" of Dynamic CPE: the paper feeds offline profile
    // data to the CPE allocator at runtime. Our synthetic workloads'
    // utility curves are exactly what the monitors measure, so the
    // measured curves stand in for the profile.
    const std::vector<partition::AppDemand> demands =
        monitors_.demands();
    partition::LookaheadConfig lc;
    lc.threshold = config_.cpe_gate_threshold;
    lc.min_ways_per_app = config_.min_ways_per_core;
    const partition::Allocation next = partition::decidePartition(
        config_.partitioner, demands, config_.geometry.ways, lc);

    // Same confirmation damping as Cooperative — especially important
    // here, where every change flushes whole ways.
    bool confirmed = false;
    if (next.ways == alloc_) {
        pending_count_ = 0;
    } else if (next.ways == pending_alloc_) {
        ++pending_count_;
        confirmed = pending_count_ + 1 >= config_.confirm_epochs;
    } else {
        pending_alloc_ = next.ways;
        pending_count_ = 0;
        confirmed = config_.confirm_epochs <= 1;
    }
    if (confirmed) {
        pending_count_ = 0;
        applyAllocation(next.ways, now);
    }
    monitors_.decay();
}

// ---------------------------------------------------------------------------
// CooperativeLlc

CooperativeLlc::CooperativeLlc(const LlcConfig &config,
                               mem::DramModel &dram)
    : BaseLlc(config, dram, /*has_partition_hw=*/true),
      monitors_(config),
      perms_(config.geometry.ways, config.num_cores),
      takeover_(config.num_cores, config.geometry.numSets()),
      rng_(config.seed ^ 0x5eed),
      transition_start_(config.geometry.ways, kCycleMax)
{
    for (std::uint32_t w = 0; w < config.geometry.ways; ++w) {
        perms_.setOwner(w, w % config.num_cores);
    }
    perms_.checkInvariants();
}

double
CooperativeLlc::poweredWays() const
{
    const double on = static_cast<double>(perms_.poweredCount());
    if (config_.gating == GatingMode::GatedVdd) {
        return on;
    }
    // Drowsy ways keep leaking at a fraction of full power.
    const double off =
        static_cast<double>(config_.geometry.ways) - on;
    return on + off * config_.drowsy_leak_fraction;
}

std::vector<std::uint32_t>
CooperativeLlc::allocation() const
{
    std::vector<std::uint32_t> alloc(config_.num_cores, 0);
    for (std::uint32_t w = 0; w < array_.ways(); ++w) {
        const CoreId writer = perms_.writerOf(w);
        if (writer != kNoCore) {
            ++alloc[writer];
        }
    }
    return alloc;
}

std::vector<std::vector<WayId>>
CooperativeLlc::ownedWays() const
{
    std::vector<std::vector<WayId>> owned(config_.num_cores);
    for (std::uint32_t w = 0; w < array_.ways(); ++w) {
        if (perms_.state(w) != WayState::Steady) {
            continue; // in-flight ways cannot be moved again
        }
        const CoreId writer = perms_.writerOf(w);
        if (writer != kNoCore) {
            owned[writer].push_back(w);
        }
    }
    return owned;
}

bool
CooperativeLlc::participate(CoreId core, SetId set, bool would_hit,
                            Cycle now)
{
    bool any_new = false;

    // Donor role: flush own dirty lines in every way being given away.
    const WayMask donating = perms_.donatingMask(core);
    if (donating != 0) {
        for (WayMask m = donating; m != 0; m &= m - 1) {
            const WayId w = cache::lowestWay(m);
            if (array_.validAt(set, w) &&
                array_.ownerAt(set, w) == core &&
                array_.dirtyAt(set, w)) {
                dram_.flush(array_.blockAddr(set, w), now);
                array_.setDirty(set, w, false);
                recordFlush(now);
            }
        }
        if (takeover_.mark(core, set)) {
            any_new = true;
            if (would_hit) {
                events_.donor_hits.inc();
            } else {
                events_.donor_misses.inc();
            }
        }
        if (takeover_.full(core)) {
            completeDonor(core, now, /*forced=*/false);
        }
    }

    // Recipient role: flush the donor's dirty lines in the ways this
    // core is receiving, and set the donor's takeover bit.
    const WayMask receiving = perms_.receivingMask(core);
    if (receiving != 0) {
        for (WayMask m = receiving; m != 0; m &= m - 1) {
            const WayId w = cache::lowestWay(m);
            const CoreId donor = perms_.donorOf(w);
            if (donor == kNoCore) {
                continue; // completed while iterating
            }
            if (array_.validAt(set, w) &&
                array_.ownerAt(set, w) == donor &&
                array_.dirtyAt(set, w)) {
                dram_.flush(array_.blockAddr(set, w), now);
                array_.setDirty(set, w, false);
                recordFlush(now);
            }
            if (takeover_.mark(donor, set)) {
                any_new = true;
                if (would_hit) {
                    events_.recipient_hits.inc();
                } else {
                    events_.recipient_misses.inc();
                }
            }
            if (takeover_.full(donor)) {
                completeDonor(donor, now, /*forced=*/false);
            }
        }
    }
    return any_new;
}

void
CooperativeLlc::completeDonor(CoreId donor, Cycle now, bool forced)
{
    const WayMask donating = perms_.donatingMask(donor);
    for (WayMask m = donating; m != 0; m &= m - 1) {
        const WayId w = cache::lowestWay(m);
        // Evacuate the donor's leftover lines. Dirty stragglers can
        // remain in two cases: a forced (stale) completion, or a donor
        // giving several ways away at once — its single bit vector can
        // be filled by a recipient that only cleans the ways *it* is
        // receiving (the paper shares one vector per donor across all
        // of its donations). Completion flushes whatever is left.
        // Drowsy drains keep the clean lines in place: if the donor
        // re-acquires the way before anyone overwrites them, they hit.
        const bool keep_clean_lines =
            config_.gating == GatingMode::Drowsy &&
            perms_.writerOf(w) == kNoCore;
        for (SetId s = 0; s < array_.numSets(); ++s) {
            if (array_.validAt(s, w) && array_.ownerAt(s, w) == donor) {
                if (array_.dirtyAt(s, w)) {
                    dram_.flush(array_.blockAddr(s, w), now);
                    recordFlush(now);
                    completion_flushes_.inc();
                    array_.setDirty(s, w, false);
                }
                if (!keep_clean_lines) {
                    array_.invalidate(s, w);
                }
            }
        }

        const bool was_transfer = perms_.writerOf(w) != kNoCore;
        perms_.clearRead(w, donor);
        if (!was_transfer) {
            // Drain: nobody left; gate the way off.
            if (config_.gating == GatingMode::GatedVdd) {
                // Gated-Vdd loses the contents: any surviving valid
                // block would be a protocol bug (the donor's were
                // evacuated above; nobody else could write here).
                for (SetId s = 0; s < array_.numSets(); ++s) {
                    COOPSIM_ASSERT(
                        !array_.block(s, w).valid,
                        "valid block in way being powered off");
                }
            }
            perms_.powerOff(w);
        }

        COOPSIM_ASSERT(transition_start_[w] != kCycleMax,
                       "completing a way with no transition start");
        // Fig 15 reports natural takeover latencies; transitions cut
        // short by the staleness bound would distort the average.
        if (was_transfer && !forced) {
            transfer_durations_.push_back(
                static_cast<double>(now - transition_start_[w]));
        }
        transition_start_[w] = kCycleMax;
    }
    if (forced) {
        forced_completions_.inc();
    }
}

void
CooperativeLlc::forceCompleteStale(Cycle now)
{
    for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
        const WayMask donating = perms_.donatingMask(c);
        if (donating == 0) {
            continue;
        }
        bool stale = false;
        for (WayMask m = donating; m != 0; m &= m - 1) {
            const WayId w = cache::lowestWay(m);
            if (transition_start_[w] + config_.stale_transition_cycles <=
                now) {
                stale = true;
                break;
            }
        }
        if (stale) {
            completeDonor(c, now, /*forced=*/true);
        }
    }
}

LlcAccess
CooperativeLlc::access(CoreId core, Addr addr, AccessType type, Cycle now)
{
    integrateStatic(now);
    const Addr aligned = array_.slicer().blockAlign(addr);
    const SetId set = array_.slicer().set(aligned);

    monitors_.observe(core, aligned);

    const WayMask read_mask = perms_.readMask(core);
    const auto probed =
        static_cast<std::uint32_t>(std::popcount(read_mask));

    if (read_mask == 0) {
        // The core owns no ways: the access bypasses the LLC entirely.
        core_stats_[core].bypasses.inc();
        const Cycle done = dram_.access(aligned, type, now);
        chargeAccess(core, 0, false, false, false, true);
        return {false, true, done, 0};
    }

    auto found = array_.lookup(aligned, read_mask);
    participate(core, set, found.hit, now);

    if (found.hit) {
        if (isWrite(type) && !perms_.canWrite(found.way, core)) {
            // Write hit in a way this core is donating: it may not
            // write there any more. participate() has just flushed the
            // line (it was ours and the set was touched), so drop the
            // stale copy and fall through to the miss path, which
            // re-allocates the line in a writable way.
            COOPSIM_ASSERT(!array_.dirtyAt(set, found.way),
                           "dirty line after donor flush");
            array_.invalidate(set, found.way);
            found.hit = false;
        } else {
            array_.touch(set, found.way);
            if (isWrite(type)) {
                array_.setDirty(set, found.way, true);
            }
            chargeAccess(core, probed, true, !isWrite(type),
                         isWrite(type), true);
            return {true, false, now + config_.hit_latency, probed};
        }
    }

    const WayMask write_mask = perms_.writeMask(core);
    if (write_mask == 0) {
        // Only possible when min_ways_per_core is 0 and the core lost
        // everything (it may still be draining reads).
        core_stats_[core].bypasses.inc();
        const Cycle done = dram_.access(aligned, type, now);
        chargeAccess(core, probed, false, false, false, true);
        return {false, true, done, probed};
    }

    // Victim preference: invalid, then stale foreign lines in ways we
    // are receiving (the paper fills incoming lines into the received
    // way), then our own LRU line.
    WayId victim = kNoWay;
    for (WayMask m = write_mask; m != 0; m &= m - 1) {
        const WayId w = cache::lowestWay(m);
        if (!array_.validAt(set, w)) {
            victim = w;
            break;
        }
    }
    if (victim == kNoWay) {
        WayMask stale = 0;
        for (WayMask m = write_mask; m != 0; m &= m - 1) {
            const WayId w = cache::lowestWay(m);
            if (array_.validAt(set, w) &&
                array_.ownerAt(set, w) != core) {
                stale |= WayMask{1} << w;
            }
        }
        if (stale != 0) {
            victim = array_.lruValidWay(set, stale);
            COOPSIM_ASSERT(!array_.dirtyAt(set, victim),
                           "stale foreign line still dirty");
        }
    }
    if (victim == kNoWay) {
        victim = array_.lruValidWay(set, write_mask);
        COOPSIM_ASSERT(victim != kNoWay, "no victim in write mask");
        if (array_.validAt(set, victim) &&
            array_.dirtyAt(set, victim)) {
            dram_.writeback(array_.blockAddr(set, victim), now);
            core_stats_[core].writebacks.inc();
        }
    }

    const Cycle done = dram_.access(aligned, type, now);
    array_.insert(aligned, set, victim, core, isWrite(type));
    chargeAccess(core, probed, false, false, true, true);
    return {false, false, done + config_.hit_latency, probed};
}

void
CooperativeLlc::epoch(Cycle now)
{
    BaseLlc::epoch(now);

    // Transitions normally run to natural completion, across epoch
    // boundaries when needed (the paper's Fig 15 transfers average
    // 10 M cycles against a 5 M-cycle epoch). Only pathologically old
    // ones — a donor that stopped accessing the cache — are forced.
    forceCompleteStale(now);

    const std::vector<partition::AppDemand> demands =
        monitors_.demands();
    partition::LookaheadConfig lc;
    lc.threshold = config_.threshold;
    lc.mode = config_.threshold_mode;
    lc.min_ways_per_app = config_.min_ways_per_core;
    const partition::Allocation next = partition::decidePartition(
        config_.partitioner, demands, config_.geometry.ways, lc);

    // Logical current allocation: steady ways plus in-flight ways,
    // which already belong to their recipient (it holds RAP+WAP).
    const std::uint32_t n = config_.num_cores;
    const std::vector<std::vector<WayId>> steady = ownedWays();
    std::vector<std::uint32_t> cur(n, 0);
    for (std::uint32_t w = 0; w < array_.ways(); ++w) {
        const CoreId writer = perms_.writerOf(w);
        if (writer != kNoCore) {
            ++cur[writer];
        }
    }

    // Confirmation damping: adopt a changed target only when the last
    // confirm_epochs decisions agree — one noisy epoch cannot trigger
    // a (costly) reconfiguration.
    bool confirmed = false;
    if (next.ways == cur) {
        pending_count_ = 0;
    } else if (next.ways == pending_alloc_) {
        ++pending_count_;
        confirmed = pending_count_ + 1 >= config_.confirm_epochs;
    } else {
        pending_alloc_ = next.ways;
        pending_count_ = 0;
        confirmed = config_.confirm_epochs <= 1;
    }

    if (confirmed) {
        pending_count_ = 0;
        // Clamp movements to what the steady pools permit: ways still
        // in flight cannot be moved again this epoch.
        std::vector<std::uint32_t> donate(n, 0);
        std::vector<std::uint32_t> receive(n, 0);
        std::uint32_t supply = 0;
        std::uint32_t demand = 0;
        std::uint32_t off_count = 0;
        for (std::uint32_t w = 0; w < array_.ways(); ++w) {
            off_count += perms_.powered(w) ? 0 : 1;
        }
        for (std::uint32_t c = 0; c < n; ++c) {
            if (next.ways[c] < cur[c]) {
                donate[c] = std::min<std::uint32_t>(
                    cur[c] - next.ways[c],
                    static_cast<std::uint32_t>(steady[c].size()));
                supply += donate[c];
            } else {
                receive[c] = next.ways[c] - cur[c];
                demand += receive[c];
            }
        }
        supply += off_count;
        while (demand > supply) {
            // Shed the largest unmet demand first.
            std::uint32_t worst = 0;
            for (std::uint32_t c = 1; c < n; ++c) {
                if (receive[c] > receive[worst]) {
                    worst = c;
                }
            }
            COOPSIM_ASSERT(receive[worst] > 0, "demand without receiver");
            --receive[worst];
            --demand;
        }

        // Planner targets expressed over the steady pools only.
        std::vector<std::uint32_t> target(n, 0);
        bool any_move = false;
        for (std::uint32_t c = 0; c < n; ++c) {
            target[c] = static_cast<std::uint32_t>(steady[c].size()) -
                        donate[c] + receive[c];
            any_move = any_move || donate[c] > 0 || receive[c] > 0;
        }

        if (any_move) {
            repartitions_.inc();
            setFlushOrigin(now);

            std::vector<WayId> off;
            for (std::uint32_t w = 0; w < array_.ways(); ++w) {
                if (!perms_.powered(w)) {
                    off.push_back(w);
                }
            }
            const partition::TransitionPlan plan =
                partition::planTransition(steady, off, target, rng_);

            // Reset each involved donor's bit vector once; a donor
            // with an in-flight transition restarts its count (the
            // paper: "the first transition will take longer").
            std::vector<bool> reset_done(n, false);
            auto reset_donor = [&](CoreId d) {
                if (!reset_done[d]) {
                    takeover_.reset(d);
                    reset_done[d] = true;
                }
            };

            for (const auto &t : plan.transfers) {
                reset_donor(t.donor);
                perms_.beginTransfer(t.way, t.donor, t.recipient);
                transition_start_[t.way] = now;
            }
            for (const auto &d : plan.drains) {
                reset_donor(d.donor);
                perms_.beginDrain(d.way, d.donor);
                transition_start_[d.way] = now;
            }
            for (const auto &p : plan.power_ons) {
                perms_.setOwner(p.way, p.recipient);
            }
        }
    }

    monitors_.decay();
    perms_.checkInvariants();
}

void
CooperativeLlc::checkInvariants() const
{
    perms_.checkInvariants();
    const bool drowsy = config_.gating == GatingMode::Drowsy;
    for (std::uint32_t w = 0; w < array_.ways(); ++w) {
        for (SetId s = 0; s < array_.numSets(); ++s) {
            const cache::CacheBlock &blk = array_.block(s, w);
            if (!blk.valid) {
                continue;
            }
            COOPSIM_ASSERT(blk.owner < config_.num_cores,
                           "block with rogue owner");
            if (drowsy) {
                // Drowsy mode preserves (clean) orphan lines in dark
                // or re-assigned ways; they must never be dirty once
                // their owner lost write access.
                if (!perms_.powered(w) ||
                    !perms_.canRead(w, blk.owner)) {
                    COOPSIM_ASSERT(!blk.dirty,
                                   "dirty orphan line: way ", w,
                                   " set ", s);
                }
                continue;
            }
            COOPSIM_ASSERT(perms_.powered(w),
                           "valid block in powered-off way ", w);
            COOPSIM_ASSERT(perms_.canRead(w, blk.owner),
                           "block unreachable by its owner: way ", w,
                           " set ", s);
        }
    }
}

// ---------------------------------------------------------------------------
// Factory

std::unique_ptr<BaseLlc>
makeLlc(Scheme scheme, const LlcConfig &config, mem::DramModel &dram)
{
    switch (scheme) {
      case Scheme::Unmanaged:
        return std::make_unique<UnmanagedLlc>(config, dram);
      case Scheme::FairShare:
        return std::make_unique<FairShareLlc>(config, dram);
      case Scheme::Ucp:
        return std::make_unique<UcpLlc>(config, dram);
      case Scheme::DynamicCpe:
        return std::make_unique<DynamicCpeLlc>(config, dram);
      case Scheme::Cooperative:
        return std::make_unique<CooperativeLlc>(config, dram);
    }
    COOPSIM_PANIC("unknown scheme");
}

} // namespace coopsim::llc
