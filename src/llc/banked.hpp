/**
 * @file
 * Banked (sliced) LLC: an array of per-bank monolithic LLCs behind a
 * slice-selection hash, the way real many-core parts organise their
 * last-level cache.
 *
 * The total geometry is divided set-wise: each of the `banks` slices
 * owns total_size/banks bytes at the full way count, with its own tag
 * array, MSHR-equivalent state, UMON monitors, partitioner and energy
 * meter — a bank is simply a BaseLlc scheme instance built by the same
 * factory as the monolithic path, so every scheme works banked without
 * modification. Addresses route to exactly one bank via SliceHash
 * (llc/slice_hash.hpp).
 *
 * Contention model: each bank has one port with a busy-until cycle.
 * An access that arrives while its bank is busy queues until the port
 * frees (counted in bankConflicts()/bankConflictCycles()); every
 * access then occupies the port for bank_occupancy_cycles. With
 * banks=1 the conflict model is disabled entirely and the wrapper
 * forwards `now` unchanged, so a one-bank banked LLC is cycle- and
 * bit-identical to the monolithic scheme it wraps.
 *
 * Determinism: bank 0 keeps the configured seed (so banks=1 reproduces
 * the monolithic RNG stream exactly); bank b > 0 derives its seed as
 * seed + b * 0x9e3779b9, keeping per-bank replacement streams
 * decorrelated but purely a function of the RunKey.
 */

#ifndef COOPSIM_LLC_BANKED_HPP
#define COOPSIM_LLC_BANKED_HPP

#include <functional>
#include <memory>
#include <vector>

#include "llc/shared_cache.hpp"
#include "llc/slice_hash.hpp"

namespace coopsim::llc
{

/** Builds one bank from its per-bank config (the scheme factory). */
using BankFactory = std::function<std::unique_ptr<BaseLlc>(
    const LlcConfig &, mem::DramModel &)>;

/** Slice-hashed array of BaseLlc banks presenting one Llc. */
class BankedLlc final : public Llc
{
  public:
    /**
     * @param config  The *total* LLC config (banks > 1, or banks = 1
     *                with the Xor hash); geometry is divided set-wise
     *                across banks.
     * @param dram    Shared memory-side model (banks contend in DRAM
     *                exactly as the monolithic LLC's cores do).
     * @param factory Scheme factory invoked once per bank with that
     *                bank's slice of the geometry.
     */
    BankedLlc(const LlcConfig &config, mem::DramModel &dram,
              const BankFactory &factory);

    LlcAccess access(CoreId core, Addr addr, AccessType type,
                     Cycle now) override;
    void epoch(Cycle now) override;
    double poweredWays() const override;
    std::vector<std::uint32_t> allocation() const override;
    Scheme scheme() const override;
    void integrateStatic(Cycle now) override;
    void resetStats(Cycle now) override;

    const LlcConfig &config() const override { return config_; }
    const CoreLlcStats &coreStats(CoreId core) const override;
    const TakeoverEventStats &takeoverEvents() const override;
    const stats::TimeSeries &flushSeries() const override;
    const std::vector<double> &transferDurations() const override;
    std::uint64_t flushedLines() const override;
    std::uint64_t epochsRun() const override;
    std::uint64_t repartitions() const override;
    energy::EnergyTotals energyTotals() const override;
    double avgWaysProbed() const override;

    std::uint32_t banks() const override { return config_.banks; }
    Cycle portAccess(Addr addr, Cycle now) override;
    void carryBacklog(Cycle from, Cycle delta) override
    {
        for (Cycle &busy : busy_until_) {
            if (busy > from) {
                busy += delta;
            }
        }
    }
    std::uint64_t bankConflicts() const override { return conflicts_; }
    std::uint64_t bankConflictCycles() const override
    {
        return conflict_cycles_;
    }

    /** The routing hash (inspection/tests). */
    const SliceHash &hash() const { return hash_; }
    /** Bank @p b (inspection/tests). */
    const BaseLlc &bank(std::uint32_t b) const { return *banks_[b]; }

  private:
    LlcConfig config_;
    SliceHash hash_;
    std::vector<std::unique_ptr<BaseLlc>> banks_;
    /** Cycle each bank's port frees (conflict model; banks > 1). */
    std::vector<Cycle> busy_until_;
    std::uint64_t conflicts_ = 0;
    std::uint64_t conflict_cycles_ = 0;

    /** Lazily merged cross-bank views handed out by reference. */
    mutable std::vector<CoreLlcStats> merged_core_stats_;
    mutable TakeoverEventStats merged_events_;
    mutable stats::TimeSeries merged_flush_series_;
    mutable std::vector<double> merged_transfer_durations_;
};

} // namespace coopsim::llc

#endif // COOPSIM_LLC_BANKED_HPP
