/**
 * @file
 * Slice-selection hash in front of a banked LLC.
 *
 * A banked LLC routes every access to exactly one bank (slice) by a
 * pure function of the block address. Two hashes are provided:
 *
 *  - Mod: the degenerate reference — the bank bits are taken directly
 *    above the block offset and the bank-local set index, so
 *    consecutive set-aligned regions stripe across banks. This is the
 *    "no hash" baseline (FlexiCAS's LLCHashNorm) and the default.
 *  - Xor: an XOR-fold bit-mask hash in the style of FlexiCAS's
 *    llchash.hpp: output bit i is the parity of the address bits
 *    (above the block offset) whose fold position is i. Every address
 *    bit above the block offset contributes to the bank choice, which
 *    breaks the power-of-two stride pathologies the Mod hash suffers.
 *
 * Both are pure functions of (address, geometry): no seed, no state —
 * the same address maps to the same bank in every run, which is what
 * keeps banked runs deterministic and replayable.
 */

#ifndef COOPSIM_LLC_SLICE_HASH_HPP
#define COOPSIM_LLC_SLICE_HASH_HPP

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace coopsim::llc
{

/** Which slice-selection hash a banked LLC routes through. */
enum class SliceHashKind : std::uint8_t
{
    Mod,
    Xor,
};

/** Human-readable hash name ("mod" / "xor", the registry keys). */
const char *sliceHashName(SliceHashKind kind);

/**
 * The hash stage itself. Constructed per banked LLC from its
 * geometry; bank() is the per-access routing function.
 */
class SliceHash
{
  public:
    /**
     * @param kind       Mod or Xor.
     * @param banks      Bank count; must be a power of two (fatal with
     *                   a descriptive message otherwise).
     * @param block_bytes Block size (locates the block-offset bits).
     * @param bank_sets  Sets per bank (locates the Mod hash's bank
     *                   bits above the bank-local set index).
     */
    SliceHash(SliceHashKind kind, std::uint32_t banks,
              std::uint32_t block_bytes, std::uint64_t bank_sets);

    /** The bank @p addr routes to (in [0, banks)). */
    std::uint32_t bank(Addr addr) const
    {
        if (banks_ == 1) {
            return 0;
        }
        if (kind_ == SliceHashKind::Mod) {
            return static_cast<std::uint32_t>(addr >> mod_shift_) &
                   (banks_ - 1);
        }
        std::uint32_t out = 0;
        for (std::uint32_t bit = 0; bit < bank_bits_; ++bit) {
            out |= static_cast<std::uint32_t>(
                       __builtin_parityll(addr & fold_masks_[bit]))
                   << bit;
        }
        return out;
    }

    SliceHashKind kind() const { return kind_; }
    std::uint32_t banks() const { return banks_; }

    /** The XOR-fold mask feeding output bit @p bit (tests). */
    std::uint64_t foldMask(std::uint32_t bit) const
    {
        return fold_masks_[bit];
    }

  private:
    SliceHashKind kind_;
    std::uint32_t banks_;
    /** log2(banks); the fold width of the Xor hash. */
    std::uint32_t bank_bits_ = 0;
    /** Mod: bank bits sit above block offset + bank-local set index. */
    std::uint32_t mod_shift_ = 0;
    /** Xor: per-output-bit parity masks (<= 64 banks -> 6 bits). */
    std::array<std::uint64_t, 6> fold_masks_{};
};

} // namespace coopsim::llc

#endif // COOPSIM_LLC_SLICE_HASH_HPP
