#include "llc/shared_cache.hpp"

#include "common/logging.hpp"

namespace coopsim::llc
{

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Unmanaged:
        return "Unmanaged";
      case Scheme::FairShare:
        return "FairShare";
      case Scheme::Ucp:
        return "UCP";
      case Scheme::DynamicCpe:
        return "DynamicCPE";
      case Scheme::Cooperative:
        return "Cooperative";
    }
    return "?";
}

namespace
{

energy::CacheEnergyProfile
profileFor(const LlcConfig &config, bool has_partition_hw)
{
    energy::CacheOrg org;
    org.size_bytes = config.geometry.size_bytes;
    org.ways = config.geometry.ways;
    org.block_bytes = config.geometry.block_bytes;
    org.has_partition_hw = has_partition_hw;
    return energy::deriveProfile(org);
}

} // namespace

BaseLlc::BaseLlc(const LlcConfig &config, mem::DramModel &dram,
                 bool has_partition_hw)
    : config_(config),
      array_(config.geometry, config.repl, config.seed),
      dram_(dram),
      energy_(profileFor(config, has_partition_hw), config.geometry.ways),
      core_stats_(config.num_cores),
      flush_series_(config.flush_series_bin, config.flush_series_bins)
{
    COOPSIM_ASSERT(config.num_cores > 0, "LLC with no cores");
    if (config.geometry.ways < config.num_cores) {
        COOPSIM_FATAL("LLC geometry ", config.geometry.size_bytes,
                      " B / ", config.geometry.ways, "-way / ",
                      config.geometry.block_bytes,
                      " B blocks cannot host ", config.num_cores,
                      " cores: way partitioning needs ways >= cores");
    }
}

void
BaseLlc::epoch(Cycle now)
{
    integrateStatic(now);
    epochs_.inc();
}

double
BaseLlc::poweredWays() const
{
    return static_cast<double>(config_.geometry.ways);
}

void
BaseLlc::integrateStatic(Cycle now)
{
    energy_.integrate(now, poweredWays());
}

void
BaseLlc::resetStats(Cycle now)
{
    integrateStatic(now);
    energy_.resetTotals(now);
    for (auto &cs : core_stats_) {
        cs = CoreLlcStats{};
    }
    events_ = TakeoverEventStats{};
    flush_series_.reset();
    transfer_durations_.clear();
    flushed_lines_.reset();
    epochs_.reset();
    repartitions_.reset();
}

const CoreLlcStats &
BaseLlc::coreStats(CoreId core) const
{
    COOPSIM_ASSERT(core < core_stats_.size(), "core id out of range");
    return core_stats_[core];
}

std::uint64_t
Llc::hitsTotal() const
{
    std::uint64_t total = 0;
    for (CoreId core = 0; core < config().num_cores; ++core) {
        total += coreStats(core).hits.value();
    }
    return total;
}

std::uint64_t
Llc::missesTotal() const
{
    std::uint64_t total = 0;
    for (CoreId core = 0; core < config().num_cores; ++core) {
        total += coreStats(core).misses.value();
    }
    return total;
}

void
BaseLlc::chargeAccess(CoreId core, std::uint32_t ways_probed, bool hit,
                      bool data_read, bool data_write, bool monitored)
{
    CoreLlcStats &cs = core_stats_[core];
    cs.accesses.inc();
    if (hit) {
        cs.hits.inc();
    } else {
        cs.misses.inc();
    }
    energy_.onAccess(ways_probed, data_read, data_write, monitored);
}

void
BaseLlc::recordFlush(Cycle now)
{
    flushed_lines_.inc();
    energy_.onBlockDrain();
    const Tick offset = now >= flush_origin_ ? now - flush_origin_ : 0;
    flush_series_.record(offset);
}

} // namespace coopsim::llc
