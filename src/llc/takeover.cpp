#include "llc/takeover.hpp"

#include "common/logging.hpp"

namespace coopsim::llc
{

TakeoverDirectory::TakeoverDirectory(std::uint32_t cores,
                                     std::uint32_t sets)
    : cores_(cores), sets_(sets),
      bits_(static_cast<std::size_t>(cores) * sets, 0),
      counts_(cores, 0)
{
    COOPSIM_ASSERT(cores > 0 && sets > 0, "empty takeover directory");
}

void
TakeoverDirectory::reset(CoreId donor)
{
    COOPSIM_ASSERT(donor < cores_, "reset out of range");
    char *row = &bits_[static_cast<std::size_t>(donor) * sets_];
    for (std::uint32_t s = 0; s < sets_; ++s) {
        row[s] = 0;
    }
    counts_[donor] = 0;
}

bool
TakeoverDirectory::mark(CoreId donor, SetId set)
{
    COOPSIM_ASSERT(donor < cores_ && set < sets_, "mark out of range");
    char &bit = bits_[static_cast<std::size_t>(donor) * sets_ + set];
    if (bit) {
        return false;
    }
    bit = 1;
    ++counts_[donor];
    return true;
}

bool
TakeoverDirectory::marked(CoreId donor, SetId set) const
{
    COOPSIM_ASSERT(donor < cores_ && set < sets_, "marked out of range");
    return bits_[static_cast<std::size_t>(donor) * sets_ + set] != 0;
}

bool
TakeoverDirectory::full(CoreId donor) const
{
    COOPSIM_ASSERT(donor < cores_, "full out of range");
    return counts_[donor] == sets_;
}

std::uint32_t
TakeoverDirectory::popcount(CoreId donor) const
{
    COOPSIM_ASSERT(donor < cores_, "popcount out of range");
    return counts_[donor];
}

} // namespace coopsim::llc
