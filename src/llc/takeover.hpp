/**
 * @file
 * Takeover bit vectors (paper Section 2.3).
 *
 * Each core owns one bit per LLC set. A donor core's vector is reset
 * when it starts donating; bits are set as donor or recipient accesses
 * touch sets (flushing the donor's dirty lines there). When every bit
 * of a donor's vector is set, all ways the donor is currently giving
 * away have been cleaned and ownership can be finalised.
 */

#ifndef COOPSIM_LLC_TAKEOVER_HPP
#define COOPSIM_LLC_TAKEOVER_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace coopsim::llc
{

/**
 * The per-core, per-set takeover bit vectors.
 */
class TakeoverDirectory
{
  public:
    TakeoverDirectory(std::uint32_t cores, std::uint32_t sets);

    /** Clears core @p donor's vector (start of its donation). */
    void reset(CoreId donor);

    /**
     * Sets the bit for (donor, set).
     * @return true when the bit was not already set.
     */
    bool mark(CoreId donor, SetId set);

    /** True when the bit for (donor, set) is set. */
    bool marked(CoreId donor, SetId set) const;

    /** True when every bit of @p donor's vector is set. */
    bool full(CoreId donor) const;

    /** Number of set bits in @p donor's vector. */
    std::uint32_t popcount(CoreId donor) const;

    std::uint32_t sets() const { return sets_; }
    std::uint32_t cores() const { return cores_; }

    /** Total bits of storage this hardware costs (Table 1). */
    std::uint64_t storageBits() const
    {
        return static_cast<std::uint64_t>(cores_) * sets_;
    }

  private:
    std::uint32_t cores_;
    std::uint32_t sets_;
    /** bits_[c * sets_ + s]; vector<char> avoids bitset proxy cost. */
    std::vector<char> bits_;
    std::vector<std::uint32_t> counts_;
};

} // namespace coopsim::llc

#endif // COOPSIM_LLC_TAKEOVER_HPP
