/**
 * @file
 * RAP/WAP access-permission registers (paper Section 2.2).
 *
 * Each LLC way carries two registers with one bit per core:
 *  - RAP (read access permission): the core may probe/read the way;
 *  - WAP (write access permission): the core may write/fill the way.
 *
 * Legal per-way states (enforced as invariants):
 *  - Off:        RAP = WAP = 0 for every core; the way is power-gated.
 *  - Steady:     exactly one core has RAP and the same core has WAP.
 *  - Transition: one core (the recipient) has RAP+WAP and exactly one
 *                other core (the donor) has RAP only.
 *  - Draining:   exactly one core (the donor) has RAP only and nobody
 *                has WAP; the way powers off when the drain completes.
 *
 * WAP ⊆ RAP per core/way always holds: write permission implies read
 * permission.
 */

#ifndef COOPSIM_LLC_PERMISSIONS_HPP
#define COOPSIM_LLC_PERMISSIONS_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace coopsim::llc
{

/** Bitmap over cores (bit c = core c); 64-bit for the 32/64-core
 *  banked topologies. */
using CoreMask = std::uint64_t;

/** Classification of a way's permission state. */
enum class WayState : std::uint8_t
{
    Off,
    Steady,
    Transition,
    Draining,
};

/**
 * The per-way RAP/WAP register file plus way power state.
 */
class PermissionFile
{
  public:
    PermissionFile(std::uint32_t ways, std::uint32_t cores);

    /** Grants steady full ownership of @p way to @p core (power on). */
    void setOwner(WayId way, CoreId core);

    /** Begins a transfer: recipient gains RAP+WAP, donor keeps RAP. */
    void beginTransfer(WayId way, CoreId donor, CoreId recipient);

    /** Begins a drain: donor keeps RAP, loses WAP; nobody else set. */
    void beginDrain(WayId way, CoreId donor);

    /** Removes @p core's read permission (end of its donor role). */
    void clearRead(WayId way, CoreId core);

    /** Powers the way off; requires RAP = WAP = 0. */
    void powerOff(WayId way);

    /** True when the way is powered. */
    bool powered(WayId way) const { return powered_[way]; }

    bool canRead(WayId way, CoreId core) const
    {
        return (rap_[way] >> core) & 1u;
    }

    bool canWrite(WayId way, CoreId core) const
    {
        return (wap_[way] >> core) & 1u;
    }

    // The four per-core way masks are queried on every LLC access but
    // change only when a partitioning decision mutates the registers, so
    // they are maintained as cached bitmaps (rebuilt on each mutation)
    // rather than recomputed from RAP/WAP per access.

    /** Mask of ways @p core may probe (RAP set). */
    std::uint64_t readMask(CoreId core) const { return read_mask_[core]; }

    /** Mask of ways @p core may fill/write (WAP set). */
    std::uint64_t writeMask(CoreId core) const
    {
        return write_mask_[core];
    }

    /** Ways where @p core is the donor (RAP without WAP). */
    std::uint64_t donatingMask(CoreId core) const
    {
        return donating_mask_[core];
    }

    /**
     * Ways @p core is receiving: core has WAP but another core still
     * has RAP.
     */
    std::uint64_t receivingMask(CoreId core) const
    {
        return receiving_mask_[core];
    }

    /** The donor of @p way (unique core with RAP and no WAP). */
    CoreId donorOf(WayId way) const;

    /** The core with WAP on @p way, or kNoCore. */
    CoreId writerOf(WayId way) const;

    /** Classifies the way's permission state. */
    WayState state(WayId way) const;

    /** Mask of powered-off ways. */
    std::uint64_t offMask() const;

    /** Number of powered ways. */
    std::uint32_t poweredCount() const;

    std::uint32_t ways() const
    {
        return static_cast<std::uint32_t>(rap_.size());
    }
    std::uint32_t cores() const { return cores_; }

    /**
     * Validates every way against the legal-state catalogue above.
     * Panics on violation — called by tests and after every epoch.
     */
    void checkInvariants() const;

  private:
    /** Rebuilds every cached per-core mask from RAP/WAP state. */
    void rebuildMasks();

    std::uint32_t cores_;
    std::vector<CoreMask> rap_;
    std::vector<CoreMask> wap_;
    std::vector<bool> powered_;
    std::vector<std::uint64_t> read_mask_;
    std::vector<std::uint64_t> write_mask_;
    std::vector<std::uint64_t> donating_mask_;
    std::vector<std::uint64_t> receiving_mask_;
};

} // namespace coopsim::llc

#endif // COOPSIM_LLC_PERMISSIONS_HPP
