#include "llc/permissions.hpp"

#include <bit>

#include "common/logging.hpp"

namespace coopsim::llc
{

PermissionFile::PermissionFile(std::uint32_t ways, std::uint32_t cores)
    : cores_(cores), rap_(ways, 0), wap_(ways, 0), powered_(ways, false),
      read_mask_(cores, 0), write_mask_(cores, 0),
      donating_mask_(cores, 0), receiving_mask_(cores, 0)
{
    COOPSIM_ASSERT(ways > 0 && ways <= 64, "ways must be in [1, 64]");
    COOPSIM_ASSERT(cores > 0 && cores <= 64, "cores must be in [1, 64]");
}

void
PermissionFile::rebuildMasks()
{
    for (std::uint32_t c = 0; c < cores_; ++c) {
        const CoreMask self = CoreMask{1} << c;
        std::uint64_t read = 0;
        std::uint64_t write = 0;
        std::uint64_t donating = 0;
        std::uint64_t receiving = 0;
        for (std::uint32_t w = 0; w < ways(); ++w) {
            const std::uint64_t bit = std::uint64_t{1} << w;
            if (rap_[w] & self) {
                read |= bit;
                if (!(wap_[w] & self)) {
                    donating |= bit;
                }
            }
            if (wap_[w] & self) {
                write |= bit;
                if ((rap_[w] & ~self) != 0) {
                    receiving |= bit;
                }
            }
        }
        read_mask_[c] = read;
        write_mask_[c] = write;
        donating_mask_[c] = donating;
        receiving_mask_[c] = receiving;
    }
}

void
PermissionFile::setOwner(WayId way, CoreId core)
{
    COOPSIM_ASSERT(way < ways() && core < cores_, "setOwner out of range");
    rap_[way] = CoreMask{1} << core;
    wap_[way] = CoreMask{1} << core;
    powered_[way] = true;
    rebuildMasks();
}

void
PermissionFile::beginTransfer(WayId way, CoreId donor, CoreId recipient)
{
    COOPSIM_ASSERT(way < ways(), "beginTransfer way out of range");
    COOPSIM_ASSERT(donor != recipient, "self transfer");
    COOPSIM_ASSERT(powered_[way], "transfer of a powered-off way");
    COOPSIM_ASSERT(rap_[way] == (CoreMask{1} << donor) &&
                       wap_[way] == (CoreMask{1} << donor),
                   "transfer source must be in steady state");
    rap_[way] |= CoreMask{1} << recipient;
    wap_[way] = CoreMask{1} << recipient;
    rebuildMasks();
}

void
PermissionFile::beginDrain(WayId way, CoreId donor)
{
    COOPSIM_ASSERT(way < ways(), "beginDrain way out of range");
    COOPSIM_ASSERT(rap_[way] == (CoreMask{1} << donor) &&
                       wap_[way] == (CoreMask{1} << donor),
                   "drain source must be in steady state");
    wap_[way] = 0;
    rebuildMasks();
}

void
PermissionFile::clearRead(WayId way, CoreId core)
{
    COOPSIM_ASSERT(way < ways() && core < cores_, "clearRead range");
    rap_[way] &= ~(CoreMask{1} << core);
    rebuildMasks();
}

void
PermissionFile::powerOff(WayId way)
{
    COOPSIM_ASSERT(way < ways(), "powerOff way out of range");
    COOPSIM_ASSERT(rap_[way] == 0 && wap_[way] == 0,
                   "powering off a way with live permissions");
    powered_[way] = false;
}

CoreId
PermissionFile::donorOf(WayId way) const
{
    const CoreMask readers_only = rap_[way] & ~wap_[way];
    if (readers_only == 0) {
        return kNoCore;
    }
    COOPSIM_ASSERT(std::popcount(readers_only) == 1,
                   "multiple donors on one way");
    return static_cast<CoreId>(std::countr_zero(readers_only));
}

CoreId
PermissionFile::writerOf(WayId way) const
{
    if (wap_[way] == 0) {
        return kNoCore;
    }
    COOPSIM_ASSERT(std::popcount(wap_[way]) == 1,
                   "multiple writers on one way");
    return static_cast<CoreId>(std::countr_zero(wap_[way]));
}

WayState
PermissionFile::state(WayId way) const
{
    const CoreMask rap = rap_[way];
    const CoreMask wap = wap_[way];
    if (rap == 0 && wap == 0) {
        return powered_[way] ? WayState::Draining : WayState::Off;
    }
    if (wap == 0) {
        return WayState::Draining;
    }
    if (rap == wap) {
        return WayState::Steady;
    }
    return WayState::Transition;
}

std::uint64_t
PermissionFile::offMask() const
{
    std::uint64_t mask = 0;
    for (std::uint32_t w = 0; w < ways(); ++w) {
        if (!powered_[w]) {
            mask |= std::uint64_t{1} << w;
        }
    }
    return mask;
}

std::uint32_t
PermissionFile::poweredCount() const
{
    std::uint32_t count = 0;
    for (std::uint32_t w = 0; w < ways(); ++w) {
        count += powered_[w] ? 1 : 0;
    }
    return count;
}

void
PermissionFile::checkInvariants() const
{
    for (std::uint32_t w = 0; w < ways(); ++w) {
        const CoreMask rap = rap_[w];
        const CoreMask wap = wap_[w];
        COOPSIM_ASSERT((wap & ~rap) == 0,
                       "WAP without RAP on way ", w);
        COOPSIM_ASSERT(std::popcount(wap) <= 1,
                       "more than one writer on way ", w);
        if (!powered_[w]) {
            COOPSIM_ASSERT(rap == 0 && wap == 0,
                           "permissions on powered-off way ", w);
            continue;
        }
        // Powered: at most one reader beyond the writer.
        COOPSIM_ASSERT(std::popcount(rap) <= 2,
                       "more than two readers on way ", w);
        if (std::popcount(rap) == 2) {
            COOPSIM_ASSERT(std::popcount(wap) == 1,
                           "two readers but no writer on way ", w);
        }
    }
}

} // namespace coopsim::llc
