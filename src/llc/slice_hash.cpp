#include "llc/slice_hash.hpp"

#include "common/geometry.hpp"
#include "common/logging.hpp"

namespace coopsim::llc
{

const char *sliceHashName(SliceHashKind kind)
{
    switch (kind) {
    case SliceHashKind::Mod:
        return "mod";
    case SliceHashKind::Xor:
        return "xor";
    }
    COOPSIM_FATAL("unknown slice hash kind ",
                  static_cast<int>(kind));
}

SliceHash::SliceHash(SliceHashKind kind, std::uint32_t banks,
                     std::uint32_t block_bytes, std::uint64_t bank_sets)
    : kind_(kind), banks_(banks)
{
    if (banks == 0 || !isPowerOfTwo(banks)) {
        COOPSIM_FATAL("slice hash over ", banks,
                      " banks: bank count must be a power of two "
                      "(address bits cannot select a fractional bank)");
    }
    COOPSIM_ASSERT(banks <= 64, "at most 64 banks");
    COOPSIM_ASSERT(block_bytes > 0 && isPowerOfTwo(block_bytes),
                   "block size must be a power of two");
    COOPSIM_ASSERT(bank_sets > 0 && isPowerOfTwo(bank_sets),
                   "per-bank set count must be a power of two");

    bank_bits_ = floorLog2(banks_);
    const std::uint32_t block_bits = floorLog2(block_bytes);
    mod_shift_ =
        block_bits + static_cast<std::uint32_t>(floorLog2(bank_sets));

    // XOR-fold masks: address bit j (for j >= block_bits) folds into
    // output bit (j - block_bits) % bank_bits, so every block-address
    // bit participates in the bank choice. With sequential block
    // addresses the lowest bank_bits bits dominate, giving the same
    // perfect striping as Mod, while higher bits perturb power-of-two
    // strides instead of aliasing onto one bank.
    if (bank_bits_ > 0) {
        for (std::uint32_t j = block_bits; j < 64; ++j) {
            fold_masks_[(j - block_bits) % bank_bits_] |=
                std::uint64_t{1} << j;
        }
    }
}

} // namespace coopsim::llc
