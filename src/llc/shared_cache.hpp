/**
 * @file
 * Shared last-level cache: configuration, common state and statistics
 * for all five partitioning schemes evaluated in the paper.
 *
 * BaseLlc owns the tag/state array, the connection to DRAM, the energy
 * meter and the per-core counters; the scheme subclasses in
 * llc/schemes.hpp implement the access and epoch behaviour.
 *
 * Timing convention: access() returns the cycle at which the requested
 * data is available to the core. State changes (fills, evictions) are
 * applied immediately — the usual trace-simulation approximation. A
 * scheme may additionally report the LLC as busy (DynamicCPE stalls all
 * cores during its bulk flushes).
 */

#ifndef COOPSIM_LLC_SHARED_CACHE_HPP
#define COOPSIM_LLC_SHARED_CACHE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "energy/accounting.hpp"
#include "llc/slice_hash.hpp"
#include "mem/dram.hpp"
#include "partition/partitioner.hpp"

namespace coopsim::llc
{

/** Which partitioning scheme an LLC instance implements. */
enum class Scheme : std::uint8_t
{
    Unmanaged,
    FairShare,
    Ucp,
    DynamicCpe,
    Cooperative,
};

/** Human-readable scheme name (matches the paper's legends). */
const char *schemeName(Scheme scheme);

/**
 * How unowned ways save static energy (extension; DESIGN.md §8).
 *
 * GatedVdd is the paper's mechanism (Powell et al.): the way loses its
 * contents and its leakage entirely. Drowsy (Flautner et al., which
 * the paper's related work suggests layering on) keeps the contents in
 * a low-voltage state at a fraction of the leakage; a core that
 * re-acquires a drowsy way finds its old (clean) lines still there.
 */
enum class GatingMode : std::uint8_t
{
    GatedVdd,
    Drowsy,
};

/** Configuration of the shared LLC. */
struct LlcConfig
{
    cache::CacheGeometry geometry{2ull << 20, 8, 64};
    std::uint32_t num_cores = 2;
    /** Serial tag+data hit latency (paper: 15 / 20 cycles). */
    Tick hit_latency = 15;
    cache::ReplPolicy repl = cache::ReplPolicy::Lru;
    std::uint64_t seed = 1;

    /** Turn-off threshold T for Cooperative (Algorithm 1). */
    double threshold = 0.05;
    partition::ThresholdMode threshold_mode =
        partition::ThresholdMode::MissRatio;
    /** Way-allocation algorithm the epoch decision runs (UCP, CPE and
     *  Cooperative; see partition/partitioner.hpp). */
    partition::Partitioner partitioner =
        partition::Partitioner::Lookahead;
    /** Gating threshold used by Dynamic CPE's profile allocator
     *  (slightly laxer than Cooperative's T, so CPE gates a little
     *  less aggressively, as in the paper's Figures 7/10). */
    double cpe_gate_threshold = 0.035;
    /** Minimum ways any core keeps. */
    std::uint32_t min_ways_per_core = 1;
    /** UMON dynamic set sampling period. */
    std::uint32_t umon_sample_period = 32;
    /**
     * Repartition confirmation: a changed allocation is adopted only
     * after this many consecutive epochs request the same target
     * (1 = adopt immediately). Dampens decision flapping when the
     * sampled utility curves are noisy, without blocking the
     * energy-motivated way turn-offs (which never reduce misses).
     */
    std::uint32_t confirm_epochs = 2;
    /**
     * Transitions older than this are forced to completion at the next
     * epoch (flushing the remaining dirty donor lines). The paper lets
     * stragglers run on; a bound keeps pathological never-accessed
     * ways from staying in limbo forever.
     */
    Tick stale_transition_cycles = 10'000'000;

    /** Static-saving mechanism for unowned ways (Cooperative only). */
    GatingMode gating = GatingMode::GatedVdd;
    /** Leakage of a drowsy way relative to a powered one. */
    double drowsy_leak_fraction = 0.25;

    /** Fig 16 time series: bin width and bin count (cycles). */
    Tick flush_series_bin = 500'000;
    std::uint32_t flush_series_bins = 24;

    /** Bank (slice) count; 1 = the paper's monolithic LLC. The total
     *  geometry is divided set-wise across banks, each bank keeping
     *  the full way count (llc/banked.hpp). */
    std::uint32_t banks = 1;
    /** Slice-selection hash routing accesses to banks. */
    SliceHashKind slice_hash = SliceHashKind::Mod;
    /** Cycles a bank's port stays busy per access (the bank-conflict
     *  queuing model; only meaningful when banks > 1). */
    Tick bank_occupancy_cycles = 2;
};

/** Result of one LLC access. */
struct LlcAccess
{
    bool hit = false;
    /** True when the core owns no ways and the access bypassed the LLC. */
    bool bypass = false;
    /** Cycle at which data is available to the requesting core. */
    Cycle ready_at = 0;
    /** Tag ways probed (the dynamic-energy driver). */
    std::uint32_t ways_probed = 0;
};

/** Per-core LLC counters. */
struct CoreLlcStats
{
    stats::Counter accesses;
    stats::Counter hits;
    stats::Counter misses;
    stats::Counter writebacks;
    stats::Counter bypasses;
};

/** Takeover-event breakdown (paper Figure 14). */
struct TakeoverEventStats
{
    stats::Counter donor_hits;
    stats::Counter donor_misses;
    stats::Counter recipient_hits;
    stats::Counter recipient_misses;

    std::uint64_t total() const
    {
        return donor_hits.value() + donor_misses.value() +
               recipient_hits.value() + recipient_misses.value();
    }
};

/**
 * Abstract LLC interface: what the simulated system (cores, collect())
 * and the API layer see. Two concrete families implement it — BaseLlc
 * (the monolithic scheme hierarchy below) and BankedLlc (llc/banked.hpp,
 * a slice-hashed array of BaseLlc banks).
 */
class Llc
{
  public:
    virtual ~Llc() = default;

    Llc(const Llc &) = delete;
    Llc &operator=(const Llc &) = delete;

    /**
     * Performs a demand access by @p core.
     *
     * @param core Requesting core.
     * @param addr Byte address (block-aligned internally).
     * @param type Read or Write.
     * @param now  Cycle the request reaches the LLC. Calls must be in
     *             non-decreasing @p now order across all cores.
     */
    virtual LlcAccess access(CoreId core, Addr addr, AccessType type,
                             Cycle now) = 0;

    /**
     * Partitioning-epoch boundary (every 5 M cycles in the paper).
     */
    virtual void epoch(Cycle now) = 0;

    /** Ways currently powered (fractional for set-gated schemes;
     *  averaged over banks for a banked LLC). */
    virtual double poweredWays() const = 0;

    /** Current way allocation per core (logical, for inspection). */
    virtual std::vector<std::uint32_t> allocation() const = 0;

    /** Scheme identity. */
    virtual Scheme scheme() const = 0;

    /** Integrates leakage up to @p now (also called by accesses). */
    virtual void integrateStatic(Cycle now) = 0;

    /**
     * Zeroes all measurement counters (energy, per-core stats, flush
     * series, transfer durations). Cache contents, permissions and
     * monitor state are untouched — used at the end of warm-up.
     */
    virtual void resetStats(Cycle now) = 0;

    // --- inspection -----------------------------------------------------

    virtual const LlcConfig &config() const = 0;
    virtual const CoreLlcStats &coreStats(CoreId core) const = 0;
    virtual const TakeoverEventStats &takeoverEvents() const = 0;
    virtual const stats::TimeSeries &flushSeries() const = 0;
    /** Completed way-transfer durations in cycles (Fig 15). */
    virtual const std::vector<double> &transferDurations() const = 0;
    /** Total lines flushed LLC->memory by partitioning activity. */
    virtual std::uint64_t flushedLines() const = 0;
    /** Partitioning decisions taken. */
    virtual std::uint64_t epochsRun() const = 0;
    /** Epochs whose allocation differed from the previous one. */
    virtual std::uint64_t repartitions() const = 0;
    /** Accumulated energy (summed over banks for a banked LLC). */
    virtual energy::EnergyTotals energyTotals() const = 0;
    /** Mean tag ways probed per access. */
    virtual double avgWaysProbed() const = 0;

    /** Bank (slice) count; 1 for the monolithic schemes. */
    virtual std::uint32_t banks() const { return 1; }
    /** Accesses that found their bank's port busy. */
    virtual std::uint64_t bankConflicts() const { return 0; }
    /** Cycles those accesses waited for the port. */
    virtual std::uint64_t bankConflictCycles() const { return 0; }

    /**
     * Claims @p addr's bank port at @p now without touching the
     * arrays: returns the cycle the access would actually start after
     * any port conflict, holding the port for the usual occupancy.
     * Monolithic schemes have no port model and return @p now. The
     * set-sampling decorator uses this to charge unsampled accesses
     * the same slice contention the sampled ones measure.
     */
    virtual Cycle portAccess(Addr addr, Cycle now)
    {
        (void)addr;
        return now;
    }

    /**
     * Op-sampling support, mirroring mem::DramModel::carryBacklog:
     * port busy-until state pending at @p from moves forward by
     * @p delta when the clock jumps over a fast-forward gap, so slice
     * contention survives the jump. No-op for schemes without a port
     * model.
     */
    virtual void carryBacklog(Cycle from, Cycle delta)
    {
        (void)from;
        (void)delta;
    }

    std::uint64_t hitsTotal() const;
    std::uint64_t missesTotal() const;

  protected:
    Llc() = default;
};

/**
 * Abstract monolithic shared LLC: common state and statistics for the
 * five scheme subclasses in llc/schemes.hpp.
 */
class BaseLlc : public Llc
{
  public:
    BaseLlc(const LlcConfig &config, mem::DramModel &dram,
            bool has_partition_hw);

    /** Default epoch: no-op (Unmanaged, FairShare). */
    void epoch(Cycle now) override;

    double poweredWays() const override;

    void integrateStatic(Cycle now) override;

    void resetStats(Cycle now) override;

    // --- inspection -----------------------------------------------------

    const LlcConfig &config() const override { return config_; }
    const cache::SetAssocCache &array() const { return array_; }
    const energy::EnergyAccounting &energy() const { return energy_; }
    const CoreLlcStats &coreStats(CoreId core) const override;
    const TakeoverEventStats &takeoverEvents() const override
    {
        return events_;
    }
    const stats::TimeSeries &flushSeries() const override
    {
        return flush_series_;
    }
    const std::vector<double> &transferDurations() const override
    {
        return transfer_durations_;
    }
    std::uint64_t flushedLines() const override
    {
        return flushed_lines_.value();
    }
    std::uint64_t epochsRun() const override { return epochs_.value(); }
    std::uint64_t repartitions() const override
    {
        return repartitions_.value();
    }
    energy::EnergyTotals energyTotals() const override
    {
        return energy_.totals();
    }
    double avgWaysProbed() const override
    {
        return energy_.avgWaysProbed();
    }

  protected:
    /** Charges an access to the meters and per-core stats. */
    void chargeAccess(CoreId core, std::uint32_t ways_probed, bool hit,
                      bool data_read, bool data_write, bool monitored);

    /** Records a partitioning-induced flush of one line at @p now. */
    void recordFlush(Cycle now);

    /** Marks the time origin for the Fig 16 flush series. */
    void setFlushOrigin(Cycle now) { flush_origin_ = now; }

    LlcConfig config_;
    cache::SetAssocCache array_;
    mem::DramModel &dram_;
    energy::EnergyAccounting energy_;
    std::vector<CoreLlcStats> core_stats_;
    TakeoverEventStats events_;
    stats::TimeSeries flush_series_;
    Cycle flush_origin_ = 0;
    std::vector<double> transfer_durations_;
    stats::Counter flushed_lines_;
    stats::Counter epochs_;
    stats::Counter repartitions_;
};

/** Factory: builds the LLC variant for @p scheme. */
std::unique_ptr<BaseLlc> makeLlc(Scheme scheme, const LlcConfig &config,
                                 mem::DramModel &dram);

} // namespace coopsim::llc

#endif // COOPSIM_LLC_SHARED_CACHE_HPP
