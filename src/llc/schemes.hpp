/**
 * @file
 * The five LLC management schemes the paper evaluates (Section 3.4):
 *
 *  - UnmanagedLlc:   no partitioning; global LRU; every access probes
 *                    every way; nothing is ever powered off.
 *  - FairShareLlc:   static equal way split, way-aligned; each core
 *                    probes only its own ways. The normalisation
 *                    baseline of every figure.
 *  - UcpLlc:         Qureshi & Patt's utility-based partitioning with
 *                    the look-ahead allocator. Logical partitions only:
 *                    data is not way-aligned, so every access probes
 *                    all ways and no way can be gated. Partitions are
 *                    realised lazily, by replacement on recipient
 *                    misses.
 *  - DynamicCpeLlc:  the paper's dynamicised version of CPE (Reddy &
 *                    Petrov): profile-style way allocations, way-aligned
 *                    with gating, but every repartition immediately
 *                    flushes and invalidates the ways that change hands,
 *                    stalling the LLC.
 *  - CooperativeLlc: the paper's contribution. Way-aligned partitions
 *                    via RAP/WAP registers, thresholded look-ahead
 *                    allocation, cooperative takeover with per-set bit
 *                    vectors, and gated-Vdd power-off of unowned ways.
 */

#ifndef COOPSIM_LLC_SCHEMES_HPP
#define COOPSIM_LLC_SCHEMES_HPP

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "llc/permissions.hpp"
#include "llc/shared_cache.hpp"
#include "llc/takeover.hpp"
#include "partition/transition_plan.hpp"
#include "umon/umon.hpp"

namespace coopsim::llc
{

/** Shared helper: per-core UMON bank + look-ahead glue. */
class MonitorBank
{
  public:
    MonitorBank(const LlcConfig &config);

    void observe(CoreId core, Addr addr);
    std::vector<partition::AppDemand> demands() const;
    void decay();
    const umon::UtilityMonitor &monitor(CoreId core) const;

  private:
    std::vector<umon::UtilityMonitor> monitors_;
};

/** No partitioning at all. */
class UnmanagedLlc final : public BaseLlc
{
  public:
    UnmanagedLlc(const LlcConfig &config, mem::DramModel &dram);

    LlcAccess access(CoreId core, Addr addr, AccessType type,
                     Cycle now) override;
    std::vector<std::uint32_t> allocation() const override;
    Scheme scheme() const override { return Scheme::Unmanaged; }
};

/** Static equal, way-aligned split. */
class FairShareLlc final : public BaseLlc
{
  public:
    FairShareLlc(const LlcConfig &config, mem::DramModel &dram);

    LlcAccess access(CoreId core, Addr addr, AccessType type,
                     Cycle now) override;
    std::vector<std::uint32_t> allocation() const override;
    Scheme scheme() const override { return Scheme::FairShare; }

    /** The fixed probe mask of @p core. */
    cache::WayMask maskOf(CoreId core) const { return masks_[core]; }

  private:
    std::vector<cache::WayMask> masks_;
};

/** Utility-based cache partitioning (logical ways, lazy enforcement). */
class UcpLlc final : public BaseLlc
{
  public:
    UcpLlc(const LlcConfig &config, mem::DramModel &dram);

    LlcAccess access(CoreId core, Addr addr, AccessType type,
                     Cycle now) override;
    void epoch(Cycle now) override;
    std::vector<std::uint32_t> allocation() const override
    {
        return alloc_;
    }
    Scheme scheme() const override { return Scheme::Ucp; }

    const MonitorBank &monitors() const { return monitors_; }

  private:
    /**
     * Tracks the physical realisation of an allocation increase: UCP
     * only moves blocks when the recipient misses, so a "way transfer"
     * completes when every set has given the recipient one more block
     * (the quantity Figure 15 reports).
     */
    struct TransferTracker
    {
        CoreId recipient = kNoCore;
        std::uint32_t ways_pending = 0;   //!< transfers not yet complete
        std::uint32_t current_target = 1; //!< per-set blocks for way #n
        Cycle started = 0;
        std::vector<std::uint32_t> per_set; //!< blocks taken per set
        std::uint32_t sets_at_target = 0;
    };

    WayId pickVictim(CoreId core, SetId set);
    void noteTakenBlock(CoreId recipient, SetId set, Cycle now);

    MonitorBank monitors_;
    std::vector<std::uint32_t> alloc_;
    std::vector<TransferTracker> trackers_;
};

/** Profile-driven set/way partitioning with bulk flushing on change. */
class DynamicCpeLlc final : public BaseLlc
{
  public:
    DynamicCpeLlc(const LlcConfig &config, mem::DramModel &dram);

    LlcAccess access(CoreId core, Addr addr, AccessType type,
                     Cycle now) override;
    void epoch(Cycle now) override;
    std::vector<std::uint32_t> allocation() const override
    {
        return alloc_;
    }
    Scheme scheme() const override { return Scheme::DynamicCpe; }
    double poweredWays() const override;

    /** Cycle until which the LLC is blocked by a repartition flush. */
    Cycle busyUntil() const { return busy_until_; }

  private:
    void applyAllocation(const std::vector<std::uint32_t> &next,
                         Cycle now);

    MonitorBank monitors_;
    std::vector<std::uint32_t> alloc_;
    std::vector<cache::WayMask> masks_;
    cache::WayMask off_mask_ = 0;
    Cycle busy_until_ = 0;
    Rng rng_;
    /** Pending target awaiting confirmation (see confirm_epochs). */
    std::vector<std::uint32_t> pending_alloc_;
    std::uint32_t pending_count_ = 0;
};

/** The paper's Cooperative Partitioning. */
class CooperativeLlc final : public BaseLlc
{
  public:
    CooperativeLlc(const LlcConfig &config, mem::DramModel &dram);

    LlcAccess access(CoreId core, Addr addr, AccessType type,
                     Cycle now) override;
    void epoch(Cycle now) override;
    std::vector<std::uint32_t> allocation() const override;
    Scheme scheme() const override { return Scheme::Cooperative; }
    double poweredWays() const override;

    const PermissionFile &permissions() const { return perms_; }
    const TakeoverDirectory &takeover() const { return takeover_; }
    const MonitorBank &monitors() const { return monitors_; }
    /** Transitions forced to completion at an epoch boundary. */
    std::uint64_t forcedCompletions() const
    {
        return forced_completions_.value();
    }

    /** Dirty lines flushed at completion time (stragglers from multi-
     *  way donations sharing one takeover vector; see completeDonor). */
    std::uint64_t completionFlushes() const
    {
        return completion_flushes_.value();
    }

    /**
     * Validates the way-alignment invariants: permission legality plus
     * "every valid block lies in a way its owner may read".
     */
    void checkInvariants() const;

  private:
    /**
     * Takeover participation of an access by @p core to @p set: flushes
     * the donor's dirty lines in transferring ways and sets takeover
     * bits (paper Section 2.3). Returns true if any new bit was set.
     */
    bool participate(CoreId core, SetId set, bool would_hit, Cycle now);

    /** Finishes all transitions whose donor is @p donor. */
    void completeDonor(CoreId donor, Cycle now, bool forced);

    /**
     * Forces completion of transitions older than the configured
     * staleness bound (flushing leftover dirty donor lines). Ordinary
     * transitions are left to finish naturally, even across epochs, as
     * in the paper.
     */
    void forceCompleteStale(Cycle now);

    /** Ways each core fully owns (steady RAP=WAP), i.e. movable ways. */
    std::vector<std::vector<WayId>> ownedWays() const;

    MonitorBank monitors_;
    PermissionFile perms_;
    TakeoverDirectory takeover_;
    Rng rng_;
    /** Transition start cycle per way (kCycleMax when steady). */
    std::vector<Cycle> transition_start_;
    stats::Counter forced_completions_;
    stats::Counter completion_flushes_;
    /** Pending target awaiting confirmation (see confirm_epochs). */
    std::vector<std::uint32_t> pending_alloc_;
    std::uint32_t pending_count_ = 0;
};

} // namespace coopsim::llc

#endif // COOPSIM_LLC_SCHEMES_HPP
