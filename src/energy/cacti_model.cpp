#include "energy/cacti_model.hpp"

#include <cmath>

#include "common/geometry.hpp"
#include "common/logging.hpp"

namespace coopsim::energy
{

CacheEnergyProfile
deriveProfile(const CacheOrg &org)
{
    COOPSIM_ASSERT(org.ways > 0 && org.block_bytes > 0 &&
                       org.size_bytes > 0,
                   "bad cache organisation");

    const std::uint64_t sets =
        org.size_bytes /
        (static_cast<std::uint64_t>(org.ways) * org.block_bytes);
    COOPSIM_ASSERT(sets > 0, "cache smaller than one set");

    // 45 nm anchor constants, in the range CACTI 5.1 reports for
    // multi-megabyte L2/L3 SRAM arrays.
    constexpr double kTagProbeBase = 0.010;   // nJ per way-probe (anchor)
    constexpr double kDataReadBase = 0.180;   // nJ per 64B block read
    constexpr double kDataWriteScale = 1.15;  // writes slightly pricier
    constexpr double kLeakPerMbitNw = 450000.0; // nW per Mbit of SRAM
    constexpr double kClockGhz = 2.0;          // converts nW to nJ/cycle

    // Tag probe grows mildly with the number of sets (decoder/bitline).
    const double set_factor =
        1.0 + 0.05 * (static_cast<double>(floorLog2(sets)) - 11.0);
    const double tag_probe = kTagProbeBase * std::max(0.5, set_factor);

    // Data energy scales with line size relative to the 64B anchor.
    const double line_factor =
        static_cast<double>(org.block_bytes) / 64.0;
    const double data_read = kDataReadBase * line_factor;

    // Leakage: bits per way = sets * (block bits + tag-ish overhead).
    const double bits_per_way =
        static_cast<double>(sets) *
        (static_cast<double>(org.block_bytes) * 8.0 + 48.0);
    const double way_leak_nw = kLeakPerMbitNw * bits_per_way / 1.0e6;
    const double way_leak_nj_per_cycle = way_leak_nw / (kClockGhz * 1e9);

    CacheEnergyProfile profile;
    profile.tag_probe_nj = tag_probe;
    profile.data_read_nj = data_read;
    profile.data_write_nj = data_read * kDataWriteScale;
    profile.way_leak_nj_per_cycle = way_leak_nj_per_cycle;

    if (org.has_partition_hw) {
        // UMON is a sampled tag directory: ~1/32 of one way's tags per
        // core, plus RAP/WAP/takeover registers (Table 1: ~8k bits).
        profile.monitor_access_nj = 0.1 * tag_probe;
        profile.monitor_leak_nj_per_cycle = 0.02 * way_leak_nj_per_cycle;
    }
    return profile;
}

} // namespace coopsim::energy
