#include "energy/accounting.hpp"

#include "common/logging.hpp"

namespace coopsim::energy
{

EnergyAccounting::EnergyAccounting(const CacheEnergyProfile &profile,
                                   std::uint32_t total_ways)
    : profile_(profile), total_ways_(total_ways)
{
    COOPSIM_ASSERT(total_ways > 0, "accounting for cache with no ways");
}

void
EnergyAccounting::onAccess(std::uint32_t ways_probed, bool data_read,
                           bool data_write, bool monitored)
{
    totals_.tag_nj +=
        profile_.tag_probe_nj * static_cast<double>(ways_probed);
    if (data_read) {
        totals_.data_nj += profile_.data_read_nj;
    }
    if (data_write) {
        totals_.data_nj += profile_.data_write_nj;
    }
    if (monitored) {
        totals_.monitor_nj += profile_.monitor_access_nj;
    }
    ++accesses_;
    ways_probed_sum_ += ways_probed;
}

void
EnergyAccounting::onBlockDrain()
{
    totals_.drain_nj += profile_.data_read_nj;
}

void
EnergyAccounting::integrate(Cycle now, double powered_ways)
{
    COOPSIM_ASSERT(powered_ways >= 0.0 &&
                       powered_ways <= static_cast<double>(total_ways_) +
                                           1e-9,
                   "powered ways out of range");
    if (now <= last_integrated_) {
        return;
    }
    const double cycles = static_cast<double>(now - last_integrated_);
    totals_.static_nj += cycles * (powered_ways *
                                   profile_.way_leak_nj_per_cycle +
                                   profile_.monitor_leak_nj_per_cycle);
    last_integrated_ = now;
}

void
EnergyAccounting::resetTotals(Cycle now)
{
    totals_ = EnergyTotals{};
    last_integrated_ = now;
    accesses_ = 0;
    ways_probed_sum_ = 0;
}

double
EnergyAccounting::avgWaysProbed() const
{
    return accesses_ > 0 ? static_cast<double>(ways_probed_sum_) /
                               static_cast<double>(accesses_)
                         : 0.0;
}

} // namespace coopsim::energy
