/**
 * @file
 * Dynamic and static energy accounting for the shared LLC.
 *
 * The LLC calls in on every access with the number of tag ways probed
 * and the data movement performed; leakage is integrated lazily over
 * the powered way-count so arbitrary gating patterns (whole ways, or
 * CPE's fractional set regions) are handled uniformly.
 */

#ifndef COOPSIM_ENERGY_ACCOUNTING_HPP
#define COOPSIM_ENERGY_ACCOUNTING_HPP

#include <cstdint>

#include "common/types.hpp"
#include "energy/cacti_model.hpp"

namespace coopsim::energy
{

/** Accumulated energy, split by component. */
struct EnergyTotals
{
    double tag_nj = 0.0;     //!< tag-way probes
    double data_nj = 0.0;    //!< data-way reads/writes on hits & fills
    double monitor_nj = 0.0; //!< UMON / permission-register activity
    double drain_nj = 0.0;   //!< partitioning-induced block drains
    double static_nj = 0.0;  //!< leakage of powered capacity

    /**
     * The paper's "dynamic energy" (Figs 6, 9, 12): LLC accesses are
     * serial, so the per-access data-way energy is identical across
     * schemes and the savings "come from the tag side only"
     * (Section 2). The figures normalise Unmanaged to almost exactly
     * ways/fair-share ways, which identifies the reported quantity as
     * the scheme-dependent part: tag probes, monitoring hardware and
     * reconfiguration drains.
     */
    double dynamicPaper() const
    {
        return tag_nj + monitor_nj + drain_nj;
    }

    /** Everything that switches: the inclusive dynamic energy. */
    double dynamicTotal() const
    {
        return tag_nj + data_nj + monitor_nj + drain_nj;
    }
};

/**
 * Per-LLC energy meter.
 */
class EnergyAccounting
{
  public:
    /**
     * @param profile  Per-event energies for this cache organisation.
     * @param total_ways Associativity (for powered-fraction bookkeeping).
     */
    EnergyAccounting(const CacheEnergyProfile &profile,
                     std::uint32_t total_ways);

    /**
     * Charges one LLC lookup.
     *
     * @param ways_probed Tag ways consulted by this access.
     * @param data_read   True when a data way is read (hit).
     * @param data_write  True when a data way is written (fill/store).
     * @param monitored   True when monitoring hardware observed it.
     */
    void onAccess(std::uint32_t ways_probed, bool data_read,
                  bool data_write, bool monitored);

    /** Charges a block writeback / flush data read + bus driver. */
    void onBlockDrain();

    /**
     * Integrates leakage up to @p now with @p powered_ways powered
     * (may be fractional: CPE powers fractions of ways).
     * Calls must have non-decreasing @p now.
     */
    void integrate(Cycle now, double powered_ways);

    /** Zeroes the totals; leakage resumes integrating from @p now. */
    void resetTotals(Cycle now);

    const EnergyTotals &totals() const { return totals_; }
    const CacheEnergyProfile &profile() const { return profile_; }

    /** Mean tag ways probed per access so far. */
    double avgWaysProbed() const;

    std::uint64_t accesses() const { return accesses_; }

    /** Total tag ways probed (so banked LLCs can aggregate the exact
     *  cross-bank average instead of averaging per-bank averages). */
    std::uint64_t waysProbedSum() const { return ways_probed_sum_; }

  private:
    CacheEnergyProfile profile_;
    std::uint32_t total_ways_;
    EnergyTotals totals_;
    Cycle last_integrated_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t ways_probed_sum_ = 0;
};

} // namespace coopsim::energy

#endif // COOPSIM_ENERGY_ACCOUNTING_HPP
