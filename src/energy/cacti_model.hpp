/**
 * @file
 * Analytic cache energy model in the style of CACTI 5.1 at 45 nm.
 *
 * The paper obtains per-access and leakage energies from CACTI at 45 nm
 * (Section 3.1). We replace the CACTI tables with a small analytic
 * model whose constants sit in the published 45 nm range. All results
 * in the paper are reported *normalised to the Fair Share scheme*, so
 * the experiments depend on energy ratios (ways probed per access,
 * fraction of powered ways over time), which the simulated mechanisms
 * produce — not on the absolute nanojoule values.
 *
 * The LLC uses serial tag/data access (paper Section 2): every lookup
 * reads the tags of the consulted ways, then exactly one data way on a
 * hit (or writes one data way on a fill). Dynamic energy therefore
 * scales with the number of tag ways probed — the quantity Cooperative
 * Partitioning reduces.
 */

#ifndef COOPSIM_ENERGY_CACTI_MODEL_HPP
#define COOPSIM_ENERGY_CACTI_MODEL_HPP

#include <cstdint>

namespace coopsim::energy
{

/** Per-event energies and leakage power for one cache organisation. */
struct CacheEnergyProfile
{
    /** Energy to probe the tag array of a single way, in nJ. */
    double tag_probe_nj = 0.0;
    /** Energy to read one data way (one block), in nJ. */
    double data_read_nj = 0.0;
    /** Energy to write one data way (fill/store), in nJ. */
    double data_write_nj = 0.0;
    /** Leakage power of one powered way (tags+data), in nW per cycle
     *  at the model clock — expressed as nJ per cycle. */
    double way_leak_nj_per_cycle = 0.0;
    /** Per-access energy of the monitoring hardware (UMON + permission
     *  registers); charged only to schemes that have it. */
    double monitor_access_nj = 0.0;
    /** Leakage of the partitioning hardware in nJ per cycle. */
    double monitor_leak_nj_per_cycle = 0.0;
};

/** Cache organisation parameters the model scales with. */
struct CacheOrg
{
    std::uint64_t size_bytes = 2ull << 20;
    std::uint32_t ways = 8;
    std::uint32_t block_bytes = 64;
    /** Whether the scheme carries UMON/RAP/WAP overhead hardware. */
    bool has_partition_hw = false;
};

/**
 * Derives a CacheEnergyProfile for a given organisation.
 *
 * Scaling rules (first-order CACTI behaviour):
 *  - tag probe energy grows with log2(sets) (wordline/bitline length)
 *    and the tag width;
 *  - data access energy grows with the block size;
 *  - leakage per way is proportional to the way's SRAM bits.
 */
CacheEnergyProfile deriveProfile(const CacheOrg &org);

} // namespace coopsim::energy

#endif // COOPSIM_ENERGY_CACTI_MODEL_HPP
